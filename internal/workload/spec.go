package workload

import (
	"fmt"
	"time"
)

// Op classes recorded by the driver. Latency semantics per class:
//
//	info.write / info.update — commit at the writer's site until every
//	    live site has applied that (or a causally newer) version: the
//	    replication-visibility lag the paper's shared information spaces
//	    live or die by. Local commit itself is instantaneous in
//	    simulated time, so commit latency would measure nothing.
//	mail.send   — MTS submission until delivery into the recipient's
//	    mailbox (per recipient), including relay retries across crashes.
//	dir.lookup  — X.500 search round-trip against the deployment's DSA.
//	trade.lookup — trader import round-trip against the trading service.
//	rtc.join / rtc.set — conference join / WYSIWIS write round-trip
//	    through the MCU.
const (
	ClassWrite  = "info.write"
	ClassUpdate = "info.update"
	ClassMail   = "mail.send"
	ClassDir    = "dir.lookup"
	ClassTrade  = "trade.lookup"
	ClassJoin   = "rtc.join"
	ClassSet    = "rtc.set"
)

// Classes lists every op class in canonical (report) order.
var Classes = []string{ClassWrite, ClassUpdate, ClassMail, ClassDir, ClassTrade, ClassJoin, ClassSet}

// Mix weights the op classes in the generated traffic; weights need not
// sum to anything in particular.
type Mix struct {
	Write  float64 `json:"write"`
	Update float64 `json:"update"`
	Mail   float64 `json:"mail"`
	Dir    float64 `json:"dir"`
	Trade  float64 `json:"trade"`
	Join   float64 `json:"join"`
	Set    float64 `json:"set"`
}

// DefaultMix is update-heavy with a steady background of lookups, mail
// and conference traffic — collaboration, not key-value churn.
func DefaultMix() Mix {
	return Mix{Write: 10, Update: 30, Mail: 15, Dir: 15, Trade: 10, Join: 5, Set: 15}
}

func (m Mix) weights() []float64 {
	return []float64{m.Write, m.Update, m.Mail, m.Dir, m.Trade, m.Join, m.Set}
}

// ChaosSpec asks the harness to derive a fault timeline from the run seed
// instead of spelling one out. Faults land in the middle 10%–70% of the
// traffic window and every one of them heals before the convergence phase
// begins, so a chaotic run must still reconverge.
type ChaosSpec struct {
	// Crashes is the number of crash→restart cycles on rng-picked sites.
	Crashes int `json:"crashes"`
	// Partitions is the number of partition→heal episodes, each splitting
	// the sites into two rng-picked halves.
	Partitions int `json:"partitions"`
	// SlowLinks is the number of degrade→restore episodes pinning a high
	// latency/loss profile onto one inter-site replication link.
	SlowLinks int `json:"slowLinks"`
	// TornTails upgrades that many crashes to also truncate a few bytes
	// off the site's WAL tail while it is down (requires Spec.StoreDir).
	TornTails int `json:"tornTails"`
	// OutageMin/OutageMax bound each fault's duration. Zero values
	// default to 2s–10s of simulated time.
	OutageMin time.Duration `json:"outageMin"`
	OutageMax time.Duration `json:"outageMax"`
}

// Fault is one entry in a scenario's fault timeline. Kind is one of
// "crash" (Site down for Duration, then restarted), "partition" (Sites
// vs the rest for Duration, then healed), "slowlink" (the Site↔Peer
// replication link degraded for Duration) or "tornwal" (crash that also
// truncates TornBytes off the WAL tail before the restart).
type Fault struct {
	At        time.Duration `json:"at"`
	Kind      string        `json:"kind"`
	Site      string        `json:"site,omitempty"`
	Peer      string        `json:"peer,omitempty"`
	Sites     []string      `json:"sites,omitempty"`
	Duration  time.Duration `json:"duration"`
	TornBytes int           `json:"tornBytes,omitempty"`
}

func (f Fault) String() string {
	switch f.Kind {
	case "partition":
		return fmt.Sprintf("%v partition %v for %v", f.At, f.Sites, f.Duration)
	case "slowlink":
		return fmt.Sprintf("%v slowlink %s<->%s for %v", f.At, f.Site, f.Peer, f.Duration)
	case "tornwal":
		return fmt.Sprintf("%v tornwal %s (-%dB) for %v", f.At, f.Site, f.TornBytes, f.Duration)
	default:
		return fmt.Sprintf("%v %s %s for %v", f.At, f.Kind, f.Site, f.Duration)
	}
}

// Spec declares one scenario: the synthesized organization, the traffic
// shape, the deployment topology, and the fault timeline. A Spec plus its
// Seed fully determines the run.
type Spec struct {
	Seed int64 `json:"seed"`

	// Organization shape. Zero values take scale-derived defaults.
	Sites      int `json:"sites"`
	Users      int `json:"users"`
	OrgUnits   int `json:"orgUnits"`
	Activities int `json:"activities"`
	Objects    int `json:"objects"`

	// Topology is "mesh" (default) or "gossip" (WithGossip overlay).
	Topology string `json:"topology"`
	// Telemetry turns on the deployment's tracing + metrics plane for
	// the run. The report then carries the metrics snapshot and trace
	// counts (Report.Telemetry); both are pure functions of the spec, so
	// fingerprints stay byte-reproducible — but differ from the same
	// spec run without telemetry, which omits the section entirely.
	Telemetry bool `json:"telemetry,omitempty"`
	// StoreDir, when non-empty, backs every site with a durable logstore
	// under StoreDir/<site> — required for torn-WAL faults.
	StoreDir     string        `json:"storeDir,omitempty"`
	SyncInterval time.Duration `json:"syncInterval"`

	// Traffic shape. OpsPerUserHour is the mean arrival rate per user;
	// the instantaneous rate follows a sinusoidal diurnal curve with the
	// given amplitude (0..1) and period.
	Duration         time.Duration `json:"duration"`
	OpsPerUserHour   float64       `json:"opsPerUserHour"`
	DiurnalAmplitude float64       `json:"diurnalAmplitude"`
	DiurnalPeriod    time.Duration `json:"diurnalPeriod"`
	// ZipfS/ZipfV shape object popularity (s > 1, v >= 1): a small hot
	// set absorbs most updates, the long tail stays cold.
	ZipfS float64 `json:"zipfS"`
	ZipfV float64 `json:"zipfV"`
	Mix   Mix     `json:"mix"`

	// Faults is the explicit fault timeline; when nil and Chaos is set,
	// the timeline is derived from the seed.
	Faults []Fault    `json:"faults,omitempty"`
	Chaos  *ChaosSpec `json:"chaos,omitempty"`

	// ConvergeTimeout caps the post-traffic reconvergence phase in
	// simulated time.
	ConvergeTimeout time.Duration `json:"convergeTimeout"`
}

// withDefaults fills the zero values in. It returns a copy; the caller's
// Spec is not mutated.
func (s Spec) withDefaults() (Spec, error) {
	if s.Sites <= 0 {
		s.Sites = 8
	}
	if s.Users <= 0 {
		s.Users = 40 * s.Sites
	}
	if s.OrgUnits <= 0 {
		s.OrgUnits = max(2, s.Sites/2)
	}
	if s.Activities <= 0 {
		s.Activities = max(4, s.Users/100)
	}
	if s.Objects <= 0 {
		s.Objects = max(16, s.Users/2)
	}
	switch s.Topology {
	case "":
		s.Topology = "mesh"
	case "mesh", "gossip":
	default:
		return s, fmt.Errorf("workload: unknown topology %q (want mesh or gossip)", s.Topology)
	}
	if s.SyncInterval <= 0 {
		s.SyncInterval = 5 * time.Second
	}
	if s.Duration <= 0 {
		s.Duration = time.Minute
	}
	if s.OpsPerUserHour <= 0 {
		s.OpsPerUserHour = 60
	}
	if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude > 1 {
		return s, fmt.Errorf("workload: diurnal amplitude %v out of [0,1]", s.DiurnalAmplitude)
	}
	if s.DiurnalAmplitude == 0 {
		s.DiurnalAmplitude = 0.6
	}
	if s.DiurnalPeriod <= 0 {
		// One full wave across the traffic window, so short scenarios
		// still see the peak-to-trough swing a real day would bring.
		s.DiurnalPeriod = s.Duration
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.ZipfV < 1 {
		s.ZipfV = 1
	}
	if s.Mix == (Mix{}) {
		s.Mix = DefaultMix()
	}
	if s.ConvergeTimeout <= 0 {
		s.ConvergeTimeout = 10 * time.Minute
	}
	if s.Chaos != nil {
		c := *s.Chaos
		if c.OutageMin <= 0 {
			c.OutageMin = 2 * time.Second
		}
		if c.OutageMax < c.OutageMin {
			c.OutageMax = c.OutageMin + 8*time.Second
		}
		if c.TornTails > 0 && s.StoreDir == "" {
			return s, fmt.Errorf("workload: torn-WAL faults need StoreDir (a durable store to tear)")
		}
		if c.TornTails > c.Crashes {
			c.Crashes = c.TornTails
		}
		s.Chaos = &c
	}
	return s, nil
}
