package workload

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWorkloadOrgScale pins workload-level numbers into the perf
// trajectory: tail latency per op class and total wire traffic for an
// organization-scale chaotic run, on both topologies. Custom units ride
// through cmd/benchjson into the BENCH_pr8.json artifact.
func BenchmarkWorkloadOrgScale(b *testing.B) {
	for _, topo := range []string{"mesh", "gossip"} {
		b.Run(fmt.Sprintf("%s/sites=16/users=2000", topo), func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				r, err := Run(Spec{
					Seed:            1992,
					Sites:           16,
					Users:           2000,
					Duration:        time.Minute,
					OpsPerUserHour:  30,
					Topology:        topo,
					Chaos:           &ChaosSpec{Crashes: 1, Partitions: 1},
					ConvergeTimeout: 30 * time.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !r.Converged {
					b.Fatal("benchmark scenario did not reconverge")
				}
				rep = r
			}
			ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
			b.ReportMetric(ms(rep.Classes[ClassWrite].Hist.Quantile(0.99)), "write-p99-ms")
			b.ReportMetric(ms(rep.Classes[ClassUpdate].Hist.Quantile(0.99)), "update-p99-ms")
			b.ReportMetric(ms(rep.Classes[ClassMail].Hist.Quantile(0.99)), "mail-p99-ms")
			b.ReportMetric(ms(rep.Classes[ClassDir].Hist.Quantile(0.50)), "lookup-p50-ms")
			var done int64
			for _, c := range Classes {
				done += rep.Classes[c].Completed
			}
			b.ReportMetric(float64(done), "ops-completed")
			var bytes int64
			for _, s := range rep.Services {
				bytes += s.BytesOut
			}
			b.ReportMetric(float64(bytes), "workload-bytes")
		})
	}
}
