package interop

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestIsolatedRequiresDirectAdapter(t *testing.T) {
	apps := SyntheticApps(3)
	w := NewIsolatedWorld()
	for _, a := range apps {
		w.AddApp(a)
	}
	// Only app-00 -> app-01 integrated.
	w.AddAdapter("app-00", "app-01", func(doc map[string]string) (map[string]string, error) {
		return map[string]string{"a01_title": doc["a00_title"], "a01_body": doc["a00_body"]}, nil
	})
	doc := apps[0].Document("t", "b")
	out, err := w.Exchange("app-00", "app-01", doc)
	if err != nil {
		t.Fatal(err)
	}
	if out["a01_title"] != "t" {
		t.Fatalf("converted = %v", out)
	}
	// No adapter for the reverse direction or other pairs.
	if _, err := w.Exchange("app-01", "app-00", out); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("reverse: %v", err)
	}
	if _, err := w.Exchange("app-00", "app-02", doc); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("unintegrated pair: %v", err)
	}
	st := w.Stats()
	if st.Attempted != 3 || st.Succeeded != 1 || st.Failed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdapterCountsQuadraticVsLinear(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		apps := SyntheticApps(n)
		iso := BuildIsolated(apps, 1.0, 1)
		env, err := BuildEnvironment(apps)
		if err != nil {
			t.Fatal(err)
		}
		wantIso := n * (n - 1)
		if iso.AdapterCount() != wantIso {
			t.Fatalf("n=%d isolated adapters = %d, want %d", n, iso.AdapterCount(), wantIso)
		}
		wantEnv := 2 * n
		if env.AdapterCount() != wantEnv {
			t.Fatalf("n=%d environment converters = %d, want %d", n, env.AdapterCount(), wantEnv)
		}
	}
}

func TestEnvironmentAllPairsInteroperate(t *testing.T) {
	apps := SyntheticApps(8)
	env, err := BuildEnvironment(apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range apps {
		doc := from.Document("hello", "world")
		for _, to := range apps {
			if from.Name == to.Name {
				continue
			}
			out, err := env.Exchange(from.Name, to.Name, doc)
			if err != nil {
				t.Fatalf("%s -> %s: %v", from.Name, to.Name, err)
			}
			if out[to.TitleField] != "hello" || out[to.BodyField] != "world" {
				t.Fatalf("%s -> %s lost content: %v", from.Name, to.Name, out)
			}
		}
	}
	st := env.Stats()
	if st.Failed != 0 || st.Succeeded != int64(8*7) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompareFullCoverage(t *testing.T) {
	cmp, err := Compare(8, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.IsolatedAdapters != 56 || cmp.EnvironmentAdapters != 16 {
		t.Fatalf("cmp = %+v", cmp)
	}
	if cmp.IsolatedSuccess != 1.0 || cmp.EnvironmentSuccess != 1.0 {
		t.Fatalf("cmp = %+v", cmp)
	}
}

func TestComparePartialCoverage(t *testing.T) {
	// With half the pairwise adapters written, isolated interop degrades;
	// the environment stays total. This is the paper's figure-2 failure
	// mode made quantitative.
	cmp, err := Compare(10, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnvironmentSuccess != 1.0 {
		t.Fatalf("environment success = %v", cmp.EnvironmentSuccess)
	}
	if cmp.IsolatedSuccess >= 0.8 || cmp.IsolatedSuccess <= 0.2 {
		t.Fatalf("isolated success = %v, want ≈0.5", cmp.IsolatedSuccess)
	}
	if cmp.IsolatedAdapters >= 90 {
		t.Fatalf("isolated adapters = %d with 50%% coverage", cmp.IsolatedAdapters)
	}
}

func TestQuickEnvironmentNeverLoses(t *testing.T) {
	apps := SyntheticApps(5)
	env, err := BuildEnvironment(apps)
	if err != nil {
		t.Fatal(err)
	}
	f := func(title, body string, fromIdx, toIdx uint8) bool {
		from := apps[int(fromIdx)%len(apps)]
		to := apps[int(toIdx)%len(apps)]
		if from.Name == to.Name {
			return true
		}
		out, err := env.Exchange(from.Name, to.Name, from.Document(title, body))
		if err != nil {
			return false
		}
		return out[to.TitleField] == title && out[to.BodyField] == body
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := BuildIsolated(SyntheticApps(12), 0.3, 99)
	b := BuildIsolated(SyntheticApps(12), 0.3, 99)
	if a.AdapterCount() != b.AdapterCount() {
		t.Fatalf("same seed produced different worlds: %d vs %d", a.AdapterCount(), b.AdapterCount())
	}
}
