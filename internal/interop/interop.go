// Package interop is the experimental harness behind figures 2 and 3 of
// the paper. It builds two worlds of N synthetic CSCW applications:
//
//   - Isolated (figure 2): applications integrate pairwise; exchanging a
//     document from app A to app B requires a direct A->B adapter. Full
//     interoperability needs N·(N-1) adapters, and any missing adapter is
//     a failed exchange.
//
//   - Environment (figure 3): applications register once with the shared
//     environment (schema + to/from the interchange representation: 2
//     converters per app). Any pair interoperates through the environment
//     with no pairwise code.
//
// The benchmarks compare adapter counts (O(N²) vs O(N)) and exchange
// success rates under partial integration effort.
package interop

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"mocca/internal/information"
)

// ErrNoAdapter reports a missing pairwise adapter in the isolated world.
var ErrNoAdapter = errors.New("interop: no adapter between applications")

// Adapter converts a document between two applications' native formats.
type Adapter func(map[string]string) (map[string]string, error)

// AppSpec describes one synthetic application.
type AppSpec struct {
	Name       string
	TitleField string
	BodyField  string
}

// SyntheticApps builds N application specs with distinct native field
// names, mimicking independently-developed CSCW tools.
func SyntheticApps(n int) []AppSpec {
	out := make([]AppSpec, n)
	for i := range out {
		out[i] = AppSpec{
			Name:       fmt.Sprintf("app-%02d", i),
			TitleField: fmt.Sprintf("a%02d_title", i),
			BodyField:  fmt.Sprintf("a%02d_body", i),
		}
	}
	return out
}

// Document builds a native document for the given app.
func (a AppSpec) Document(title, body string) map[string]string {
	return map[string]string{a.TitleField: title, a.BodyField: body}
}

// --- Figure 2: isolated applications --------------------------------------

// IsolatedWorld wires applications pairwise.
type IsolatedWorld struct {
	mu       sync.RWMutex
	apps     map[string]AppSpec
	adapters map[[2]string]Adapter
	stats    Stats
}

// Stats counts exchanges.
type Stats struct {
	Attempted int64
	Succeeded int64
	Failed    int64
}

// NewIsolatedWorld creates an empty isolated world.
func NewIsolatedWorld() *IsolatedWorld {
	return &IsolatedWorld{
		apps:     make(map[string]AppSpec),
		adapters: make(map[[2]string]Adapter),
	}
}

// AddApp installs an application.
func (w *IsolatedWorld) AddApp(spec AppSpec) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.apps[spec.Name] = spec
}

// AddAdapter installs a one-directional pairwise adapter.
func (w *IsolatedWorld) AddAdapter(from, to string, fn Adapter) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.adapters[[2]string{from, to}] = fn
}

// AdapterCount reports how many pairwise adapters were written.
func (w *IsolatedWorld) AdapterCount() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.adapters)
}

// Stats returns a snapshot.
func (w *IsolatedWorld) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stats
}

// Exchange moves a document from one app to another. Isolated applications
// cannot chain through third parties — they do not know the other
// applications exist (figure 2) — so only a direct adapter works.
func (w *IsolatedWorld) Exchange(from, to string, doc map[string]string) (map[string]string, error) {
	w.mu.Lock()
	w.stats.Attempted++
	fn, ok := w.adapters[[2]string{from, to}]
	if !ok {
		w.stats.Failed++
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoAdapter, from, to)
	}
	w.mu.Unlock()
	out, err := fn(doc)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.stats.Failed++
		return nil, err
	}
	w.stats.Succeeded++
	return out, nil
}

// BuildIsolated constructs a figure-2 world over the given apps, writing a
// direct adapter for the given fraction of ordered pairs (coverage 1.0 =
// every pair integrated; realistic deployments sit far below). The rng
// decides which pairs get adapters, deterministically per seed.
func BuildIsolated(apps []AppSpec, coverage float64, seed int64) *IsolatedWorld {
	w := NewIsolatedWorld()
	rng := rand.New(rand.NewSource(seed))
	for _, a := range apps {
		w.AddApp(a)
	}
	for _, from := range apps {
		for _, to := range apps {
			if from.Name == to.Name {
				continue
			}
			if coverage < 1.0 && rng.Float64() >= coverage {
				continue
			}
			src, dst := from, to
			w.AddAdapter(src.Name, dst.Name, func(doc map[string]string) (map[string]string, error) {
				return map[string]string{
					dst.TitleField: doc[src.TitleField],
					dst.BodyField:  doc[src.BodyField],
				}, nil
			})
		}
	}
	return w
}

// --- Figure 3: environment-mediated --------------------------------------

// EnvironmentWorld routes every exchange through the shared information
// model: one schema + two converters per application.
type EnvironmentWorld struct {
	registry *information.SchemaRegistry
	mu       sync.RWMutex
	apps     map[string]AppSpec
	stats    Stats
}

// SharedSchema is the interchange representation of the harness.
const SharedSchema = "interop-shared"

// NewEnvironmentWorld creates the figure-3 world.
func NewEnvironmentWorld() *EnvironmentWorld {
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{
		Name: SharedSchema,
		Fields: []information.Field{
			{Name: "title", Type: information.FieldText},
			{Name: "body", Type: information.FieldText},
		},
	}); err != nil {
		panic(err) // static; cannot fail
	}
	return &EnvironmentWorld{
		registry: registry,
		apps:     make(map[string]AppSpec),
	}
}

// RegisterApp admits an application: one schema registration plus its two
// interchange converters — the entire integration cost in figure 3.
func (w *EnvironmentWorld) RegisterApp(spec AppSpec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.registry.Register(information.Schema{
		Name: spec.Name,
		Fields: []information.Field{
			{Name: spec.TitleField, Type: information.FieldText},
			{Name: spec.BodyField, Type: information.FieldText},
		},
	}); err != nil {
		return err
	}
	s := spec
	if err := w.registry.AddConverter(information.Converter{
		From: s.Name, To: SharedSchema,
		Fn: func(doc map[string]string) (map[string]string, error) {
			return map[string]string{"title": doc[s.TitleField], "body": doc[s.BodyField]}, nil
		},
	}); err != nil {
		return err
	}
	if err := w.registry.AddConverter(information.Converter{
		From: SharedSchema, To: s.Name,
		Fn: func(doc map[string]string) (map[string]string, error) {
			return map[string]string{s.TitleField: doc["title"], s.BodyField: doc["body"]}, nil
		},
	}); err != nil {
		return err
	}
	w.apps[spec.Name] = spec
	return nil
}

// AdapterCount reports converters registered (2 per app).
func (w *EnvironmentWorld) AdapterCount() int {
	return w.registry.ConverterCount()
}

// Stats returns a snapshot.
func (w *EnvironmentWorld) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stats
}

// Exchange converts a document between any two registered apps via the
// interchange schema.
func (w *EnvironmentWorld) Exchange(from, to string, doc map[string]string) (map[string]string, error) {
	w.mu.Lock()
	w.stats.Attempted++
	w.mu.Unlock()
	out, err := w.registry.Convert(doc, from, to)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.stats.Failed++
		return nil, err
	}
	w.stats.Succeeded++
	return out, nil
}

// BuildEnvironment constructs a figure-3 world over the given apps.
func BuildEnvironment(apps []AppSpec) (*EnvironmentWorld, error) {
	w := NewEnvironmentWorld()
	for _, a := range apps {
		if err := w.RegisterApp(a); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// --- Comparison ------------------------------------------------------------

// Comparison summarises one N-application run of both worlds.
type Comparison struct {
	Apps                int
	IsolatedAdapters    int
	EnvironmentAdapters int
	IsolatedSuccess     float64 // fraction of pair exchanges that worked
	EnvironmentSuccess  float64
}

// Compare runs every ordered pair exchange once in both worlds.
func Compare(n int, isolatedCoverage float64, seed int64) (Comparison, error) {
	apps := SyntheticApps(n)
	iso := BuildIsolated(apps, isolatedCoverage, seed)
	env, err := BuildEnvironment(apps)
	if err != nil {
		return Comparison{}, err
	}
	for _, from := range apps {
		doc := from.Document("status report", "tunnel on schedule")
		for _, to := range apps {
			if from.Name == to.Name {
				continue
			}
			_, _ = iso.Exchange(from.Name, to.Name, doc)
			if _, err := env.Exchange(from.Name, to.Name, doc); err != nil {
				return Comparison{}, err // environment must never fail
			}
		}
	}
	isoStats, envStats := iso.Stats(), env.Stats()
	cmp := Comparison{
		Apps:                n,
		IsolatedAdapters:    iso.AdapterCount(),
		EnvironmentAdapters: env.AdapterCount(),
	}
	if isoStats.Attempted > 0 {
		cmp.IsolatedSuccess = float64(isoStats.Succeeded) / float64(isoStats.Attempted)
	}
	if envStats.Attempted > 0 {
		cmp.EnvironmentSuccess = float64(envStats.Succeeded) / float64(envStats.Attempted)
	}
	return cmp, nil
}
