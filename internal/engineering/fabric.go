package engineering

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ChannelInfo describes one live transport channel as the engineering
// viewpoint records it: the bound interfaces, the binding epoch, and the
// traffic the channel has carried.
type ChannelInfo struct {
	Local, Remote string
	Epoch         uint64
	Rebinds       int64
	FramesOut     int64
	FramesIn      int64
	BytesOut      int64
	BytesIn       int64
	// DiscardsIn/DiscardBytesIn count frames the network delivered but the
	// channel stack dropped before the receiver (decode errors, stale
	// epochs, interceptor vetoes).
	DiscardsIn     int64
	DiscardBytesIn int64
}

// FabricTotals aggregates a fabric's channel counters.
type FabricTotals struct {
	Nodes          int
	Channels       int
	FramesOut      int64
	FramesIn       int64
	BytesOut       int64
	BytesIn        int64
	DiscardsIn     int64
	DiscardBytesIn int64
}

// Fabric mirrors the live channel stacks of a running deployment into
// engineering-viewpoint bookkeeping: every network address becomes a Node
// hosting a "transport" capsule, and every binding a stack establishes
// becomes a channel record here. It implements the channel package's
// Observer contract structurally (string addresses, int sizes), so the
// engineering layer needs no dependency on the transport packages.
//
// Because the channel stack is the only path to the network, a fabric
// observing every stack sees every frame: Reconcile checks its totals
// against netsim's own counters and any disagreement means traffic
// bypassed the engineering channel.
type Fabric struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	channels map[fabricKey]*ChannelInfo
}

type fabricKey struct{ local, remote string }

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		nodes:    make(map[string]*Node),
		channels: make(map[fabricKey]*ChannelInfo),
	}
}

// nodeLocked ensures the engineering Node (with its transport capsule) for
// an address. Caller holds f.mu.
func (f *Fabric) nodeLocked(addr string) *Node {
	n, ok := f.nodes[addr]
	if !ok {
		n = NewNode(addr)
		if _, err := n.NewCapsule("transport"); err != nil {
			panic(err) // fresh node: cannot collide
		}
		f.nodes[addr] = n
	}
	return n
}

// channelLocked ensures the record for a (local, remote) binding. Caller
// holds f.mu.
func (f *Fabric) channelLocked(local, remote string) *ChannelInfo {
	key := fabricKey{local, remote}
	c, ok := f.channels[key]
	if !ok {
		f.nodeLocked(local)
		c = &ChannelInfo{Local: local, Remote: remote, Epoch: 1}
		f.channels[key] = c
	}
	return c
}

// ChannelBound records a newly established binding at the given epoch.
func (f *Fabric) ChannelBound(local, remote string, epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.channelLocked(local, remote)
	c.Epoch = epoch
}

// ChannelRebound records an epoch change (migration/failover rebinding).
func (f *Fabric) ChannelRebound(local, remote string, epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.channelLocked(local, remote)
	c.Epoch = epoch
	c.Rebinds++
}

// FrameSent records one frame put on the wire by local toward remote.
func (f *Fabric) FrameSent(local, remote string, wireBytes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.channelLocked(local, remote)
	c.FramesOut++
	c.BytesOut += int64(wireBytes)
}

// FrameReceived records one frame delivered to local from remote.
func (f *Fabric) FrameReceived(local, remote string, wireBytes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.channelLocked(local, remote)
	c.FramesIn++
	c.BytesIn += int64(wireBytes)
}

// FrameDiscarded records a frame the network delivered to local but the
// channel stack dropped before the receiver.
func (f *Fabric) FrameDiscarded(local, remote string, wireBytes int, _ string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.channelLocked(local, remote)
	c.DiscardsIn++
	c.DiscardBytesIn += int64(wireBytes)
}

// Node returns the engineering node mirroring the given address, if the
// fabric has seen traffic from it.
func (f *Fabric) Node(addr string) (*Node, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[addr]
	return n, ok
}

// Channels snapshots every live channel, sorted by (local, remote).
func (f *Fabric) Channels() []ChannelInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ChannelInfo, 0, len(f.channels))
	for _, c := range f.channels {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Local != out[j].Local {
			return out[i].Local < out[j].Local
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

// Totals aggregates all channel counters.
func (f *Fabric) Totals() FabricTotals {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := FabricTotals{Nodes: len(f.nodes), Channels: len(f.channels)}
	for _, c := range f.channels {
		t.FramesOut += c.FramesOut
		t.FramesIn += c.FramesIn
		t.BytesOut += c.BytesOut
		t.BytesIn += c.BytesIn
		t.DiscardsIn += c.DiscardsIn
		t.DiscardBytesIn += c.DiscardBytesIn
	}
	return t
}

// TotalsFor aggregates the counters of channels whose local address has
// the given prefix — the per-service slice of the fabric. With every
// subsystem on its own node-address prefix (mta-*, repl-*, user-*), this
// is how e.g. anti-entropy sync traffic is isolated from the rest of the
// engineering bookkeeping.
func (f *Fabric) TotalsFor(localPrefix string) FabricTotals {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t FabricTotals
	nodes := make(map[string]bool)
	for _, c := range f.channels {
		if !strings.HasPrefix(c.Local, localPrefix) {
			continue
		}
		if !nodes[c.Local] {
			nodes[c.Local] = true
			t.Nodes++
		}
		t.Channels++
		t.FramesOut += c.FramesOut
		t.FramesIn += c.FramesIn
		t.BytesOut += c.BytesOut
		t.BytesIn += c.BytesIn
		t.DiscardsIn += c.DiscardsIn
		t.DiscardBytesIn += c.DiscardBytesIn
	}
	return t
}

// Reconcile checks the fabric's view against the network's own counters
// (netsim.Stats fields, passed positionally so this package stays free of
// transport dependencies). Sent must equal the fabric's frames out —
// every transmission went through an observed channel — and every frame
// the network delivered must be accounted for by the channel layer,
// either received or explicitly discarded (stale epoch, decode error,
// interceptor veto). A mismatch means traffic bypassed the channel stack.
func (f *Fabric) Reconcile(netSent, netDelivered, netBytes int64) error {
	t := f.Totals()
	if t.FramesOut != netSent {
		return fmt.Errorf("engineering: fabric saw %d frames out, network sent %d", t.FramesOut, netSent)
	}
	if in := t.FramesIn + t.DiscardsIn; in != netDelivered {
		return fmt.Errorf("engineering: fabric accounted %d delivered frames (%d received + %d discarded), network delivered %d",
			in, t.FramesIn, t.DiscardsIn, netDelivered)
	}
	if in := t.BytesIn + t.DiscardBytesIn; in != netBytes {
		return fmt.Errorf("engineering: fabric accounted %d delivered bytes, network delivered %d", in, netBytes)
	}
	return nil
}
