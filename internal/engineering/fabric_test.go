package engineering

import (
	"strings"
	"testing"
)

func TestFabricBookkeeping(t *testing.T) {
	f := NewFabric()
	f.ChannelBound("a", "b", 1)
	f.FrameSent("a", "b", 100)
	f.FrameReceived("b", "a", 100)
	f.FrameSent("a", "b", 50)
	f.FrameReceived("b", "a", 50)
	f.ChannelRebound("a", "b", 2)

	chans := f.Channels()
	if len(chans) != 2 {
		t.Fatalf("channels = %d, want 2 (a→b and b←a)", len(chans))
	}
	ab := chans[0]
	if ab.Local != "a" || ab.Remote != "b" || ab.Epoch != 2 || ab.Rebinds != 1 {
		t.Fatalf("a→b record = %+v", ab)
	}
	if ab.FramesOut != 2 || ab.BytesOut != 150 {
		t.Fatalf("a→b traffic = %+v", ab)
	}
	ba := chans[1]
	if ba.FramesIn != 2 || ba.BytesIn != 150 {
		t.Fatalf("b←a traffic = %+v", ba)
	}

	// Each address the fabric has seen locally is an engineering node with
	// a transport capsule.
	for _, addr := range []string{"a", "b"} {
		n, ok := f.Node(addr)
		if !ok {
			t.Fatalf("no engineering node for %q", addr)
		}
		if caps := n.Capsules(); len(caps) != 1 || caps[0] != "transport" {
			t.Fatalf("node %q capsules = %v", addr, caps)
		}
	}

	totals := f.Totals()
	if totals.Nodes != 2 || totals.Channels != 2 || totals.FramesOut != 2 || totals.FramesIn != 2 {
		t.Fatalf("totals = %+v", totals)
	}
}

func TestFabricReconcile(t *testing.T) {
	f := NewFabric()
	f.FrameSent("a", "b", 64)
	f.FrameReceived("b", "a", 64)

	if err := f.Reconcile(1, 1, 64); err != nil {
		t.Fatalf("reconcile failed: %v", err)
	}
	err := f.Reconcile(2, 1, 64)
	if err == nil || !strings.Contains(err.Error(), "network sent 2") {
		t.Fatalf("mismatch not detected: %v", err)
	}
	if err := f.Reconcile(1, 2, 64); err == nil {
		t.Fatal("delivered mismatch not detected")
	}
	if err := f.Reconcile(1, 1, 65); err == nil {
		t.Fatal("bytes mismatch not detected")
	}

	// Frames the channel layer discarded (stale epoch, decode error,
	// interceptor veto) still reconcile: the network delivered them, the
	// fabric accounts them as discards.
	f.FrameSent("a", "b", 32)
	f.FrameDiscarded("b", "a", 32, "stale-epoch")
	if err := f.Reconcile(2, 2, 96); err != nil {
		t.Fatalf("reconcile with discard failed: %v", err)
	}
	if totals := f.Totals(); totals.DiscardsIn != 1 || totals.DiscardBytesIn != 32 {
		t.Fatalf("totals = %+v", totals)
	}
}

func TestFabricTotalsFor(t *testing.T) {
	f := NewFabric()
	f.FrameSent("repl-gmd", "repl-upc", 100)
	f.FrameSent("repl-upc", "repl-gmd", 40)
	f.FrameReceived("repl-upc", "repl-gmd", 100)
	f.FrameSent("mta-gmd", "mta-upc", 999)

	repl := f.TotalsFor("repl-")
	if repl.Nodes != 2 || repl.Channels != 2 {
		t.Fatalf("repl slice = %+v", repl)
	}
	if repl.FramesOut != 2 || repl.BytesOut != 140 || repl.FramesIn != 1 || repl.BytesIn != 100 {
		t.Fatalf("repl counters = %+v", repl)
	}
	if mta := f.TotalsFor("mta-"); mta.Channels != 1 || mta.BytesOut != 999 {
		t.Fatalf("mta slice = %+v", mta)
	}
	if none := f.TotalsFor("user-"); none.Channels != 0 || none.Nodes != 0 {
		t.Fatalf("empty slice = %+v", none)
	}
	// The slices partition the fabric's totals.
	all := f.Totals()
	if repl.FramesOut+f.TotalsFor("mta-").FramesOut != all.FramesOut {
		t.Fatal("slices do not partition totals")
	}
}
