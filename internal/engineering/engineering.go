// Package engineering models the ODP engineering viewpoint that §6.1
// references: the machinery that supports distribution. Nodes host
// capsules; capsules host clusters (the unit of migration and
// checkpointing); clusters host basic engineering objects; and channels —
// composed of stubs, a binder, and a protocol object — connect objects
// across capsules.
//
// The package exists so the repository's "CSCW environment over ODP
// environment" layering (figure 4) is real at every viewpoint: the
// computational interactions of internal/rpc correspond to channels here,
// and the transparency masks of internal/odp describe what a channel's
// binder preserves across relocation (location/migration transparency is
// demonstrated by Migrate + rebinding).
package engineering

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mocca/internal/wire"
)

// Errors of the engineering layer.
var (
	ErrUnknownObject  = errors.New("engineering: unknown object")
	ErrUnknownCluster = errors.New("engineering: unknown cluster")
	ErrNotBound       = errors.New("engineering: channel not bound")
	ErrStaleBinding   = errors.New("engineering: stale binding epoch")
	ErrCapsuleDown    = errors.New("engineering: capsule failed")
	ErrNameTaken      = errors.New("engineering: name already in use")
)

// Behaviour is the computational behaviour of a basic engineering object:
// it services invocations against the object's state.
type Behaviour func(state map[string]string, method string, arg []byte) ([]byte, error)

// Object is a basic engineering object: identity, state, behaviour.
type Object struct {
	Name      string
	state     map[string]string
	behaviour Behaviour
}

// Node is a computing system with a nucleus that hosts capsules.
type Node struct {
	Name string

	mu       sync.Mutex
	capsules map[string]*Capsule
}

// NewNode creates a node.
func NewNode(name string) *Node {
	return &Node{Name: name, capsules: make(map[string]*Capsule)}
}

// NewCapsule creates a capsule (an encapsulated unit of processing and
// storage) on this node.
func (n *Node) NewCapsule(name string) (*Capsule, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.capsules[name]; ok {
		return nil, fmt.Errorf("%w: capsule %q", ErrNameTaken, name)
	}
	c := &Capsule{
		Name:     name,
		node:     n,
		clusters: make(map[string]*Cluster),
		up:       true,
	}
	n.capsules[name] = c
	return c, nil
}

// Capsules lists the node's capsule names, sorted.
func (n *Node) Capsules() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.capsules))
	for name := range n.capsules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Capsule hosts clusters of objects. A capsule can fail (taking its
// clusters with it) and recover.
type Capsule struct {
	Name string

	node     *Node
	mu       sync.Mutex
	clusters map[string]*Cluster
	up       bool
}

// Up reports whether the capsule is running.
func (c *Capsule) Up() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.up
}

// SetDown fails (true) or recovers (false) the capsule. Failure does not
// destroy state — this models a crash-recover capsule whose clusters are
// restored from their last checkpoint by the nucleus.
func (c *Capsule) SetDown(down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.up = !down
}

// NewCluster creates a cluster (the unit of deactivation, checkpointing,
// and migration) in this capsule.
func (c *Capsule) NewCluster(name string) (*Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.clusters[name]; ok {
		return nil, fmt.Errorf("%w: cluster %q", ErrNameTaken, name)
	}
	cl := &Cluster{Name: name, capsule: c, objects: make(map[string]*Object)}
	c.clusters[name] = cl
	return cl, nil
}

// Cluster groups objects that migrate and checkpoint together.
type Cluster struct {
	Name string

	mu      sync.Mutex
	capsule *Capsule
	objects map[string]*Object
	epoch   uint64 // bumped on every migration; binders validate it
}

// Capsule returns the cluster's current host capsule.
func (cl *Cluster) Capsule() *Capsule {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.capsule
}

// Epoch returns the cluster's binding epoch.
func (cl *Cluster) Epoch() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.epoch
}

// NewObject instantiates a basic engineering object in the cluster.
func (cl *Cluster) NewObject(name string, behaviour Behaviour) (*Object, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, ok := cl.objects[name]; ok {
		return nil, fmt.Errorf("%w: object %q", ErrNameTaken, name)
	}
	obj := &Object{Name: name, state: make(map[string]string), behaviour: behaviour}
	cl.objects[name] = obj
	return obj, nil
}

// invoke runs an object's behaviour if the hosting capsule is up and the
// caller's binding epoch is current.
func (cl *Cluster) invoke(objName string, epoch uint64, method string, arg []byte) ([]byte, error) {
	cl.mu.Lock()
	capsule := cl.capsule
	obj, ok := cl.objects[objName]
	curEpoch := cl.epoch
	cl.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objName)
	}
	if !capsule.Up() {
		return nil, fmt.Errorf("%w: %q", ErrCapsuleDown, capsule.Name)
	}
	if epoch != curEpoch {
		return nil, fmt.Errorf("%w: have %d, channel bound at %d", ErrStaleBinding, curEpoch, epoch)
	}
	if obj.behaviour == nil {
		return nil, fmt.Errorf("%w: %q has no behaviour", ErrUnknownObject, objName)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return obj.behaviour(obj.state, method, arg)
}

// Checkpoint captures the state of every object in the cluster.
func (cl *Cluster) Checkpoint() map[string]map[string]string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[string]map[string]string, len(cl.objects))
	for name, obj := range cl.objects {
		snap := make(map[string]string, len(obj.state))
		for k, v := range obj.state {
			snap[k] = v
		}
		out[name] = snap
	}
	return out
}

// Restore replaces object state from a checkpoint (objects missing from
// the checkpoint keep their current state).
func (cl *Cluster) Restore(checkpoint map[string]map[string]string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for name, snap := range checkpoint {
		obj, ok := cl.objects[name]
		if !ok {
			continue
		}
		obj.state = make(map[string]string, len(snap))
		for k, v := range snap {
			obj.state[k] = v
		}
	}
}

// Migrate moves the cluster to another capsule, bumping the binding epoch:
// channels bound before the move observe ErrStaleBinding and must rebind —
// unless they requested migration transparency, in which case the channel
// rebinds automatically (see Channel.Invoke).
func (cl *Cluster) Migrate(target *Capsule) error {
	cl.mu.Lock()
	from := cl.capsule
	cl.mu.Unlock()
	if !target.Up() {
		return fmt.Errorf("%w: target %q", ErrCapsuleDown, target.Name)
	}

	from.mu.Lock()
	delete(from.clusters, cl.Name)
	from.mu.Unlock()

	target.mu.Lock()
	if _, ok := target.clusters[cl.Name]; ok {
		target.mu.Unlock()
		// Roll back.
		from.mu.Lock()
		from.clusters[cl.Name] = cl
		from.mu.Unlock()
		return fmt.Errorf("%w: cluster %q at target", ErrNameTaken, cl.Name)
	}
	target.clusters[cl.Name] = cl
	target.mu.Unlock()

	cl.mu.Lock()
	cl.capsule = target
	cl.epoch++
	cl.mu.Unlock()
	return nil
}

// Channel connects a client to a server object through stub, binder, and
// protocol objects. Create with Bind.
type Channel struct {
	mu sync.Mutex
	// server side
	cluster *Cluster
	objName string
	// binder state
	epoch       uint64
	transparent bool // migration transparency: rebind on epoch change
	// stats
	invocations int64
	rebinds     int64
}

// BindOption configures a channel.
type BindOption func(*Channel)

// WithMigrationTransparency makes the channel rebind automatically when
// the target cluster migrates, hiding relocation from the client.
func WithMigrationTransparency() BindOption {
	return func(ch *Channel) { ch.transparent = true }
}

// Bind establishes a channel to an object in a cluster. The binder records
// the cluster's current epoch.
func Bind(cluster *Cluster, objName string, opts ...BindOption) (*Channel, error) {
	cluster.mu.Lock()
	_, ok := cluster.objects[objName]
	epoch := cluster.epoch
	cluster.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objName)
	}
	ch := &Channel{cluster: cluster, objName: objName, epoch: epoch}
	for _, opt := range opts {
		opt(ch)
	}
	return ch, nil
}

// Invoke sends an invocation through the channel: the stub frames the
// request in a wire envelope, the binder validates the epoch, and the
// protocol object delivers it to the server object's behaviour.
func (ch *Channel) Invoke(method string, arg []byte) ([]byte, error) {
	// Stub: marshal (round-tripping through the wire format keeps the
	// engineering channel honest about what crosses capsule boundaries).
	env := wire.NewEnvelope("eng.invoke", "", arg)
	env.SetHeader("method", method)
	framed, err := wire.Marshal(env)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Unmarshal(framed)
	if err != nil {
		return nil, err
	}
	m, _ := decoded.Header("method")

	ch.mu.Lock()
	cluster := ch.cluster
	objName := ch.objName
	epoch := ch.epoch
	transparent := ch.transparent
	ch.invocations++
	ch.mu.Unlock()

	out, err := cluster.invoke(objName, epoch, m, decoded.Body)
	if errors.Is(err, ErrStaleBinding) && transparent {
		// Binder: re-establish against the cluster's new epoch.
		ch.mu.Lock()
		ch.epoch = cluster.Epoch()
		ch.rebinds++
		epoch = ch.epoch
		ch.mu.Unlock()
		out, err = cluster.invoke(objName, epoch, m, decoded.Body)
	}
	return out, err
}

// Rebind refreshes the channel's binding epoch explicitly (for channels
// without migration transparency).
func (ch *Channel) Rebind() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.epoch = ch.cluster.Epoch()
	ch.rebinds++
}

// Stats reports invocation and rebind counts.
func (ch *Channel) Stats() (invocations, rebinds int64) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.invocations, ch.rebinds
}

// KVBehaviour is a ready-made behaviour implementing a tiny key-value
// protocol: "set" with arg "k=v", "get" with arg "k", "keys" listing keys.
func KVBehaviour() Behaviour {
	return func(state map[string]string, method string, arg []byte) ([]byte, error) {
		switch method {
		case "set":
			s := string(arg)
			for i := 0; i < len(s); i++ {
				if s[i] == '=' {
					state[s[:i]] = s[i+1:]
					return []byte("ok"), nil
				}
			}
			return nil, errors.New("engineering: set needs k=v")
		case "get":
			v, ok := state[string(arg)]
			if !ok {
				return nil, fmt.Errorf("engineering: no key %q", arg)
			}
			return []byte(v), nil
		case "keys":
			keys := make([]string, 0, len(state))
			for k := range state {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := ""
			for i, k := range keys {
				if i > 0 {
					out += ","
				}
				out += k
			}
			return []byte(out), nil
		default:
			return nil, fmt.Errorf("engineering: unknown method %q", method)
		}
	}
}
