package engineering

import (
	"errors"
	"testing"
)

type engFixture struct {
	nodeA, nodeB *Node
	capA, capB   *Capsule
	cluster      *Cluster
}

func newEngFixture(t *testing.T) *engFixture {
	t.Helper()
	f := &engFixture{}
	f.nodeA = NewNode("site-a")
	f.nodeB = NewNode("site-b")
	var err error
	if f.capA, err = f.nodeA.NewCapsule("capsule-a"); err != nil {
		t.Fatal(err)
	}
	if f.capB, err = f.nodeB.NewCapsule("capsule-b"); err != nil {
		t.Fatal(err)
	}
	if f.cluster, err = f.capA.NewCluster("kv-cluster"); err != nil {
		t.Fatal(err)
	}
	if _, err = f.cluster.NewObject("store", KVBehaviour()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBindAndInvoke(t *testing.T) {
	f := newEngFixture(t)
	ch, err := Bind(f.cluster, "store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Invoke("set", []byte("colour=blue")); err != nil {
		t.Fatal(err)
	}
	out, err := ch.Invoke("get", []byte("colour"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "blue" {
		t.Fatalf("get = %q", out)
	}
	if _, err := ch.Invoke("get", []byte("missing")); err == nil {
		t.Fatal("get of missing key succeeded")
	}
	if _, err := ch.Invoke("bogus", nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
	inv, reb := ch.Stats()
	if inv != 4 || reb != 0 {
		t.Fatalf("stats = %d/%d", inv, reb)
	}
}

func TestBindUnknownObject(t *testing.T) {
	f := newEngFixture(t)
	if _, err := Bind(f.cluster, "ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestNameCollisions(t *testing.T) {
	f := newEngFixture(t)
	if _, err := f.nodeA.NewCapsule("capsule-a"); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("capsule: %v", err)
	}
	if _, err := f.capA.NewCluster("kv-cluster"); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("cluster: %v", err)
	}
	if _, err := f.cluster.NewObject("store", nil); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("object: %v", err)
	}
}

func TestCapsuleFailureBlocksInvocation(t *testing.T) {
	f := newEngFixture(t)
	ch, err := Bind(f.cluster, "store")
	if err != nil {
		t.Fatal(err)
	}
	f.capA.SetDown(true)
	if _, err := ch.Invoke("set", []byte("k=v")); !errors.Is(err, ErrCapsuleDown) {
		t.Fatalf("err = %v", err)
	}
	f.capA.SetDown(false)
	if _, err := ch.Invoke("set", []byte("k=v")); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestMigrationStaleBindingWithoutTransparency(t *testing.T) {
	f := newEngFixture(t)
	ch, err := Bind(f.cluster, "store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Invoke("set", []byte("k=v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.cluster.Migrate(f.capB); err != nil {
		t.Fatal(err)
	}
	// The old binding is stale: the client must observe the relocation.
	if _, err := ch.Invoke("get", []byte("k")); !errors.Is(err, ErrStaleBinding) {
		t.Fatalf("err = %v, want ErrStaleBinding", err)
	}
	// Explicit rebind restores service; state travelled with the cluster.
	ch.Rebind()
	out, err := ch.Invoke("get", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "v1" {
		t.Fatalf("state lost in migration: %q", out)
	}
	if f.cluster.Capsule() != f.capB {
		t.Fatal("cluster not at target capsule")
	}
}

func TestMigrationTransparencyRebindsAutomatically(t *testing.T) {
	f := newEngFixture(t)
	ch, err := Bind(f.cluster, "store", WithMigrationTransparency())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Invoke("set", []byte("k=v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.cluster.Migrate(f.capB); err != nil {
		t.Fatal(err)
	}
	// Relocation is invisible: the channel rebinds under the covers.
	out, err := ch.Invoke("get", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "v1" {
		t.Fatalf("get after transparent migration = %q", out)
	}
	_, rebinds := ch.Stats()
	if rebinds != 1 {
		t.Fatalf("rebinds = %d, want 1", rebinds)
	}
}

func TestMigrateToDownCapsuleRefused(t *testing.T) {
	f := newEngFixture(t)
	f.capB.SetDown(true)
	if err := f.cluster.Migrate(f.capB); !errors.Is(err, ErrCapsuleDown) {
		t.Fatalf("err = %v", err)
	}
	// Cluster stays where it was.
	if f.cluster.Capsule() != f.capA {
		t.Fatal("cluster moved despite refused migration")
	}
}

func TestCheckpointRestore(t *testing.T) {
	f := newEngFixture(t)
	ch, err := Bind(f.cluster, "store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Invoke("set", []byte("a=1")); err != nil {
		t.Fatal(err)
	}
	checkpoint := f.cluster.Checkpoint()
	if _, err := ch.Invoke("set", []byte("a=2")); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Invoke("set", []byte("b=3")); err != nil {
		t.Fatal(err)
	}
	// Crash-recover: restore from the checkpoint.
	f.cluster.Restore(checkpoint)
	out, err := ch.Invoke("get", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1" {
		t.Fatalf("restored a = %q, want 1", out)
	}
	// Keys written after the checkpoint are rolled back only if the
	// checkpoint recorded the object at all — "b" was not in it, so the
	// restore replaced the whole object state and b is gone.
	if _, err := ch.Invoke("get", []byte("b")); err == nil {
		t.Fatal("post-checkpoint key survived restore")
	}
}

func TestCheckpointIsDeepCopy(t *testing.T) {
	f := newEngFixture(t)
	ch, _ := Bind(f.cluster, "store")
	if _, err := ch.Invoke("set", []byte("a=1")); err != nil {
		t.Fatal(err)
	}
	cp := f.cluster.Checkpoint()
	cp["store"]["a"] = "tampered"
	out, err := ch.Invoke("get", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1" {
		t.Fatal("checkpoint aliased live state")
	}
}

func TestKeysMethod(t *testing.T) {
	f := newEngFixture(t)
	ch, _ := Bind(f.cluster, "store")
	for _, kv := range []string{"z=1", "a=2", "m=3"} {
		if _, err := ch.Invoke("set", []byte(kv)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ch.Invoke("keys", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "a,m,z" {
		t.Fatalf("keys = %q", got)
	}
}

func TestNodeCapsuleListing(t *testing.T) {
	f := newEngFixture(t)
	if _, err := f.nodeA.NewCapsule("capsule-x"); err != nil {
		t.Fatal(err)
	}
	caps := f.nodeA.Capsules()
	if len(caps) != 2 || caps[0] != "capsule-a" || caps[1] != "capsule-x" {
		t.Fatalf("capsules = %v", caps)
	}
}
