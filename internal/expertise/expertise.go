// Package expertise implements the paper's User Expertise Model: "this
// model is expressed in terms of user's responsibility, which is imposed by
// the organisation and user's capabilities, which describes the users
// individual skills."
//
// The environment uses it to staff activities (who CAN do this?) and to
// audit coverage (who MUST do this, and can they?).
package expertise

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mocca/internal/org"
)

// Level grades a capability from novice to authority.
type Level int

// Capability levels.
const (
	LevelNovice Level = iota + 1
	LevelCompetent
	LevelProficient
	LevelExpert
	LevelAuthority
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNovice:
		return "novice"
	case LevelCompetent:
		return "competent"
	case LevelProficient:
		return "proficient"
	case LevelExpert:
		return "expert"
	case LevelAuthority:
		return "authority"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Capability is an individual skill at a level.
type Capability struct {
	Skill string
	Level Level
}

// Responsibility is organisation-imposed: the Source records where it came
// from (typically a role id in the org model).
type Responsibility struct {
	Name   string
	Source string
}

// Profile is one user's expertise record.
type Profile struct {
	User             string
	Capabilities     map[string]Level // skill -> level
	Responsibilities []Responsibility
}

// clone deep-copies the profile.
func (p *Profile) clone() *Profile {
	out := &Profile{
		User:             p.User,
		Capabilities:     make(map[string]Level, len(p.Capabilities)),
		Responsibilities: append([]Responsibility(nil), p.Responsibilities...),
	}
	for k, v := range p.Capabilities {
		out.Capabilities[k] = v
	}
	return out
}

// ErrUnknownUser reports a missing profile.
var ErrUnknownUser = errors.New("expertise: unknown user")

// Model stores expertise profiles and the skill requirements of
// responsibilities. Safe for concurrent use.
type Model struct {
	mu           sync.RWMutex
	profiles     map[string]*Profile
	requirements map[string]map[string]Level // responsibility -> skill -> min level
}

// NewModel creates an empty model.
func NewModel() *Model {
	return &Model{
		profiles:     make(map[string]*Profile),
		requirements: make(map[string]map[string]Level),
	}
}

// ensureLocked returns (creating if needed) the profile for user.
func (m *Model) ensureLocked(user string) *Profile {
	p, ok := m.profiles[user]
	if !ok {
		p = &Profile{User: user, Capabilities: make(map[string]Level)}
		m.profiles[user] = p
	}
	return p
}

// SetCapability records a skill level (level 0 removes the skill).
func (m *Model) SetCapability(user, skill string, level Level) {
	skill = strings.ToLower(skill)
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.ensureLocked(user)
	if level <= 0 {
		delete(p.Capabilities, skill)
		return
	}
	p.Capabilities[skill] = level
}

// AddResponsibility imposes a responsibility (idempotent per name+source).
func (m *Model) AddResponsibility(user, name, source string) {
	name = strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.ensureLocked(user)
	for _, r := range p.Responsibilities {
		if r.Name == name && r.Source == source {
			return
		}
	}
	p.Responsibilities = append(p.Responsibilities, Responsibility{Name: name, Source: source})
}

// RemoveResponsibility lifts a responsibility.
func (m *Model) RemoveResponsibility(user, name string) {
	name = strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.profiles[user]
	if !ok {
		return
	}
	keep := p.Responsibilities[:0]
	for _, r := range p.Responsibilities {
		if r.Name != name {
			keep = append(keep, r)
		}
	}
	p.Responsibilities = keep
}

// Profile returns a copy of the user's profile.
func (m *Model) Profile(user string) (*Profile, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.profiles[user]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	return p.clone(), nil
}

// RequireSkill declares that a responsibility needs a skill at min level.
func (m *Model) RequireSkill(responsibility, skill string, min Level) {
	responsibility = strings.ToLower(responsibility)
	skill = strings.ToLower(skill)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requirements[responsibility] == nil {
		m.requirements[responsibility] = make(map[string]Level)
	}
	m.requirements[responsibility][skill] = min
}

// FindCapable returns users holding the skill at >= min, ranked by level
// descending then name.
func (m *Model) FindCapable(skill string, min Level) []string {
	skill = strings.ToLower(skill)
	m.mu.RLock()
	defer m.mu.RUnlock()
	type ranked struct {
		user  string
		level Level
	}
	var rs []ranked
	for user, p := range m.profiles {
		if lvl, ok := p.Capabilities[skill]; ok && lvl >= min {
			rs = append(rs, ranked{user, lvl})
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].level != rs[j].level {
			return rs[i].level > rs[j].level
		}
		return rs[i].user < rs[j].user
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.user
	}
	return out
}

// Requirement describes one skill requirement for matching.
type Requirement struct {
	Skill string
	Min   Level
}

// Match scores users against a requirement set: the score is the number of
// requirements met; ties break by total level surplus, then name. Users
// meeting no requirement are omitted.
func (m *Model) Match(reqs []Requirement) []MatchResult {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []MatchResult
	for user, p := range m.profiles {
		met, surplus := 0, 0
		for _, req := range reqs {
			lvl, ok := p.Capabilities[strings.ToLower(req.Skill)]
			if ok && lvl >= req.Min {
				met++
				surplus += int(lvl - req.Min)
			}
		}
		if met > 0 {
			out = append(out, MatchResult{User: user, Met: met, Total: len(reqs), Surplus: surplus})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Met != out[j].Met {
			return out[i].Met > out[j].Met
		}
		if out[i].Surplus != out[j].Surplus {
			return out[i].Surplus > out[j].Surplus
		}
		return out[i].User < out[j].User
	})
	return out
}

// MatchResult ranks one user against a requirement set.
type MatchResult struct {
	User    string
	Met     int
	Total   int
	Surplus int
}

// Gap reports a responsibility whose holder lacks a required skill.
type Gap struct {
	User           string
	Responsibility string
	Skill          string
	Need           Level
	Have           Level // 0 when absent
}

// Gaps audits every profile against the declared skill requirements of its
// responsibilities — the "can the people who MUST do this actually do it?"
// check.
func (m *Model) Gaps() []Gap {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Gap
	for user, p := range m.profiles {
		for _, resp := range p.Responsibilities {
			for skill, need := range m.requirements[resp.Name] {
				have := p.Capabilities[skill]
				if have < need {
					out = append(out, Gap{
						User:           user,
						Responsibility: resp.Name,
						Skill:          skill,
						Need:           need,
						Have:           have,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		if out[i].Responsibility != out[j].Responsibility {
			return out[i].Responsibility < out[j].Responsibility
		}
		return out[i].Skill < out[j].Skill
	})
	return out
}

// ImportResponsibilities derives organisation-imposed responsibilities from
// the org model: every role a person fills becomes a responsibility sourced
// from that role.
func (m *Model) ImportResponsibilities(kb *org.KnowledgeBase) {
	for _, person := range kb.ObjectsByKind(org.KindPerson) {
		for _, roleID := range kb.RolesFilledBy(person.ID) {
			m.AddResponsibility(person.ID, roleID, "org:"+roleID)
		}
	}
}

// Users lists all profiled users, sorted.
func (m *Model) Users() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.profiles))
	for u := range m.profiles {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
