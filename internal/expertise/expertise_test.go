package expertise

import (
	"errors"
	"testing"

	"mocca/internal/org"
)

func newSkilledModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	m.SetCapability("ada", "tunnel-engineering", LevelExpert)
	m.SetCapability("ada", "project-management", LevelProficient)
	m.SetCapability("ben", "tunnel-engineering", LevelCompetent)
	m.SetCapability("ben", "geology", LevelExpert)
	m.SetCapability("carol", "project-management", LevelAuthority)
	return m
}

func TestProfileCRUD(t *testing.T) {
	m := newSkilledModel(t)
	p, err := m.Profile("ada")
	if err != nil {
		t.Fatal(err)
	}
	if p.Capabilities["tunnel-engineering"] != LevelExpert {
		t.Fatalf("profile = %+v", p)
	}
	// Returned profile is a copy.
	p.Capabilities["tunnel-engineering"] = LevelNovice
	again, _ := m.Profile("ada")
	if again.Capabilities["tunnel-engineering"] != LevelExpert {
		t.Fatal("Profile returned aliased storage")
	}
	if _, err := m.Profile("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost err = %v", err)
	}
	// Level 0 removes.
	m.SetCapability("ada", "tunnel-engineering", 0)
	p2, _ := m.Profile("ada")
	if _, ok := p2.Capabilities["tunnel-engineering"]; ok {
		t.Fatal("level 0 did not remove skill")
	}
}

func TestFindCapableRanked(t *testing.T) {
	m := newSkilledModel(t)
	got := m.FindCapable("tunnel-engineering", LevelCompetent)
	if len(got) != 2 || got[0] != "ada" || got[1] != "ben" {
		t.Fatalf("capable = %v", got)
	}
	got = m.FindCapable("tunnel-engineering", LevelExpert)
	if len(got) != 1 || got[0] != "ada" {
		t.Fatalf("experts = %v", got)
	}
	if got := m.FindCapable("basket-weaving", LevelNovice); len(got) != 0 {
		t.Fatalf("unknown skill = %v", got)
	}
}

func TestMatchRanking(t *testing.T) {
	m := newSkilledModel(t)
	reqs := []Requirement{
		{Skill: "tunnel-engineering", Min: LevelCompetent},
		{Skill: "project-management", Min: LevelCompetent},
	}
	got := m.Match(reqs)
	if len(got) != 3 {
		t.Fatalf("matches = %+v", got)
	}
	// ada meets both; ben and carol meet one each; carol's surplus on
	// project-management (authority - competent = 3) beats ben's surplus
	// on tunnel-engineering (competent - competent = 0).
	if got[0].User != "ada" || got[0].Met != 2 {
		t.Fatalf("first = %+v", got[0])
	}
	if got[1].User != "carol" || got[2].User != "ben" {
		t.Fatalf("tie-break order = %v, %v", got[1], got[2])
	}
}

func TestResponsibilitiesAndGaps(t *testing.T) {
	m := newSkilledModel(t)
	m.AddResponsibility("ben", "chief-engineer", "org:chief-engineer")
	m.RequireSkill("chief-engineer", "tunnel-engineering", LevelExpert)
	m.RequireSkill("chief-engineer", "project-management", LevelCompetent)

	gaps := m.Gaps()
	if len(gaps) != 2 {
		t.Fatalf("gaps = %+v", gaps)
	}
	// ben is competent (needs expert) and lacks project-management.
	for _, g := range gaps {
		if g.User != "ben" || g.Responsibility != "chief-engineer" {
			t.Fatalf("gap = %+v", g)
		}
	}
	// Upskilling closes gaps.
	m.SetCapability("ben", "tunnel-engineering", LevelExpert)
	m.SetCapability("ben", "project-management", LevelCompetent)
	if gaps := m.Gaps(); len(gaps) != 0 {
		t.Fatalf("gaps after upskilling = %+v", gaps)
	}
}

func TestAddResponsibilityIdempotent(t *testing.T) {
	m := NewModel()
	m.AddResponsibility("x", "r", "src")
	m.AddResponsibility("x", "r", "src")
	p, _ := m.Profile("x")
	if len(p.Responsibilities) != 1 {
		t.Fatalf("responsibilities = %v", p.Responsibilities)
	}
	m.RemoveResponsibility("x", "r")
	p, _ = m.Profile("x")
	if len(p.Responsibilities) != 0 {
		t.Fatal("remove failed")
	}
	// Removing from an unknown user is a no-op.
	m.RemoveResponsibility("ghost", "r")
}

func TestImportFromOrgModel(t *testing.T) {
	kb := org.NewKnowledgeBase()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(kb.AddObject(org.Object{ID: "gmd", Kind: org.KindOrg}))
	must(kb.AddObject(org.Object{ID: "prinz", Kind: org.KindPerson, Org: "gmd"}))
	must(kb.AddObject(org.Object{ID: "group-leader", Kind: org.KindRole, Org: "gmd"}))
	must(kb.Relate("prinz", org.RelFills, "group-leader"))

	m := NewModel()
	m.ImportResponsibilities(kb)
	p, err := m.Profile("prinz")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Responsibilities) != 1 || p.Responsibilities[0].Name != "group-leader" {
		t.Fatalf("imported = %+v", p.Responsibilities)
	}
	// Re-import stays idempotent.
	m.ImportResponsibilities(kb)
	p, _ = m.Profile("prinz")
	if len(p.Responsibilities) != 1 {
		t.Fatal("re-import duplicated responsibilities")
	}
}

func TestUsers(t *testing.T) {
	m := newSkilledModel(t)
	got := m.Users()
	if len(got) != 3 || got[0] != "ada" || got[2] != "carol" {
		t.Fatalf("users = %v", got)
	}
}
