package comm

import (
	"fmt"
	"strings"

	"mocca/internal/rtc"
)

// BridgeConference realises temporal transparency for meetings: the full
// event history of a synchronous conference is rendered into a digest and
// sent to each absent member through the hub's transparent path. Members
// who were present are skipped — they saw it live.
//
// Returns the number of digests dispatched.
func BridgeConference(hub *Hub, server *rtc.Server, conferenceID string, allMembers []string, context string) (int, error) {
	history, err := server.History(conferenceID)
	if err != nil {
		return 0, err
	}
	present := make(map[string]bool)
	for _, ev := range history {
		switch ev.Kind {
		case rtc.EventJoined:
			present[ev.From] = true
		}
	}
	digest := RenderDigest(history)
	hub.RegisterSystem("conference-bridge")
	sent := 0
	var firstErr error
	for _, member := range allMembers {
		if present[member] {
			continue
		}
		_, err := hub.Send(Message{
			From:    "conference-bridge",
			To:      member,
			Subject: fmt.Sprintf("minutes of conference %s", conferenceID),
			Body:    digest,
			Context: context,
		})
		if err != nil && firstErr == nil {
			firstErr = err
			continue
		}
		if err == nil {
			sent++
		}
	}
	return sent, firstErr
}

// RenderDigest renders a conference history as readable minutes.
func RenderDigest(history []rtc.Event) string {
	var b strings.Builder
	for _, ev := range history {
		switch ev.Kind {
		case rtc.EventJoined:
			fmt.Fprintf(&b, "[%s] %s joined\n", ev.At.Format("15:04:05"), ev.From)
		case rtc.EventLeft:
			fmt.Fprintf(&b, "[%s] %s left\n", ev.At.Format("15:04:05"), ev.From)
		case rtc.EventEvicted:
			fmt.Fprintf(&b, "[%s] %s disconnected\n", ev.At.Format("15:04:05"), ev.From)
		case rtc.EventState:
			fmt.Fprintf(&b, "[%s] %s set %s = %s\n", ev.At.Format("15:04:05"), ev.From, ev.Key, ev.Value)
		case rtc.EventFloor:
			fmt.Fprintf(&b, "[%s] floor %s by %s\n", ev.At.Format("15:04:05"), ev.Value, ev.From)
		}
	}
	if b.Len() == 0 {
		return "(no recorded activity)"
	}
	return b.String()
}
