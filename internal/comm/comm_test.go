package comm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

type hubFixture struct {
	clk   *vclock.Simulated
	net   *netsim.Network
	hub   *Hub
	sel   *transparency.Selector
	mta   *mhs.MTA
	prinz *mhs.UserAgent
	klaus *mhs.UserAgent
}

func newHubFixture(t *testing.T) *hubFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(31))
	mtaEP := rpc.NewEndpoint(net.MustAddNode("mta"), clk)
	mta := mhs.NewMTA("mta-gmd", "gmd.de", mtaEP, clk)
	prinz := mhs.NewUserAgent(mhs.MustParseORName("pn=prinz;o=gmd;c=de"), mta)
	klaus := mhs.NewUserAgent(mhs.MustParseORName("pn=klaus;o=gmd;c=de"), mta)

	sel := transparency.NewSelector()
	hub := NewHub(clk, sel)
	hub.Register("prinz", prinz)
	hub.Register("klaus", klaus)
	return &hubFixture{clk: clk, net: net, hub: hub, sel: sel, mta: mta, prinz: prinz, klaus: klaus}
}

func TestSendSyncWhenOnline(t *testing.T) {
	f := newHubFixture(t)
	var live []Message
	if err := f.hub.SetOnline("klaus", func(m Message) { live = append(live, m) }); err != nil {
		t.Fatal(err)
	}
	mode, err := f.hub.Send(Message{From: "prinz", To: "klaus", Subject: "now", Body: "q?", Context: "act-1"})
	if err != nil || mode != transparency.ModeSync {
		t.Fatalf("mode=%v err=%v", mode, err)
	}
	if len(live) != 1 || live[0].Subject != "now" {
		t.Fatalf("live = %v", live)
	}
	// Nothing hit the mailbox.
	f.clk.RunUntilIdle()
	if f.klaus.Unread() != 0 {
		t.Fatal("sync delivery also hit the mailbox")
	}
}

func TestSendAsyncWhenOffline(t *testing.T) {
	f := newHubFixture(t)
	mode, err := f.hub.Send(Message{From: "prinz", To: "klaus", Subject: "later", Body: "fyi", Context: "act-1"})
	if err != nil || mode != transparency.ModeAsync {
		t.Fatalf("mode=%v err=%v", mode, err)
	}
	f.clk.RunUntilIdle()
	msgs, err := f.klaus.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Envelope.Content.Subject != "later" {
		t.Fatalf("mailbox = %v", msgs)
	}
	if got := msgs[0].Envelope.Content.Headers["comm-from"]; got != "prinz" {
		t.Fatalf("comm-from = %q", got)
	}
}

func TestOfflineWithoutTimeTransparencyFails(t *testing.T) {
	f := newHubFixture(t)
	f.sel.Disable("prinz", odp.Time)
	_, err := f.hub.Send(Message{From: "prinz", To: "klaus", Subject: "x"})
	if !errors.Is(err, transparency.ErrRecipientOffline) {
		t.Fatalf("err = %v", err)
	}
	if st := f.hub.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownUsers(t *testing.T) {
	f := newHubFixture(t)
	if _, err := f.hub.Send(Message{From: "ghost", To: "klaus"}); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost sender: %v", err)
	}
	if _, err := f.hub.Send(Message{From: "prinz", To: "ghost"}); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost recipient: %v", err)
	}
}

func TestPresenceToggle(t *testing.T) {
	f := newHubFixture(t)
	if err := f.hub.SetOnline("klaus", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if !f.hub.Online("klaus") {
		t.Fatal("not online after SetOnline")
	}
	if err := f.hub.SetOnline("klaus", nil); err != nil {
		t.Fatal(err)
	}
	if f.hub.Online("klaus") {
		t.Fatal("still online after SetOnline(nil)")
	}
	if err := f.hub.SetOnline("ghost", nil); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost presence: %v", err)
	}
}

func TestExchangeLogWithContext(t *testing.T) {
	f := newHubFixture(t)
	_, _ = f.hub.Send(Message{From: "prinz", To: "klaus", Subject: "a", Context: "act-1"})
	_, _ = f.hub.Send(Message{From: "prinz", To: "klaus", Subject: "b", Context: "act-2"})
	_, _ = f.hub.Send(Message{From: "klaus", To: "prinz", Subject: "c", Context: "act-1"})
	all := f.hub.Exchanges("")
	if len(all) != 3 {
		t.Fatalf("all exchanges = %d", len(all))
	}
	act1 := f.hub.Exchanges("act-1")
	if len(act1) != 2 || act1[0].Message.Subject != "a" || act1[1].Message.Subject != "c" {
		t.Fatalf("act-1 exchanges = %v", act1)
	}
}

func TestSpoolMedia(t *testing.T) {
	f := newHubFixture(t)
	fax := NewSpool("fax")
	f.hub.AddMedium(fax)
	if err := f.hub.SendVia("fax", Message{From: "prinz", To: "+49-2241", Subject: "contract", Body: "sign here"}); err != nil {
		t.Fatal(err)
	}
	if fax.Len() != 1 {
		t.Fatalf("spool len = %d", fax.Len())
	}
	items := fax.Drain()
	if len(items) != 1 || items[0].Subject != "contract" {
		t.Fatalf("drained = %v", items)
	}
	if fax.Len() != 0 {
		t.Fatal("drain did not empty spool")
	}
	if err := f.hub.SendVia("telex", Message{}); !errors.Is(err, ErrUnknownMedium) {
		t.Fatalf("unknown medium: %v", err)
	}
	// Media exchanges carry their medium name in the log.
	exs := f.hub.Exchanges("")
	if len(exs) != 1 || exs[0].Medium != "fax" {
		t.Fatalf("exchange log = %v", exs)
	}
}

func TestIngestFromMedium(t *testing.T) {
	f := newHubFixture(t)
	// A fax arrives from an external party addressed to klaus (offline):
	// interchange routes it into his mailbox.
	mode, err := f.hub.Ingest("fax", Message{From: "external-partner", To: "klaus", Subject: "inbound fax", Body: "…"})
	if err != nil || mode != transparency.ModeAsync {
		t.Fatalf("mode=%v err=%v", mode, err)
	}
	f.clk.RunUntilIdle()
	if f.klaus.Unread() != 1 {
		t.Fatal("ingested fax not in mailbox")
	}
}

func TestConferenceBridge(t *testing.T) {
	f := newHubFixture(t)
	// Host a conference where only prinz participates; klaus is absent.
	mcuEP := rpc.NewEndpoint(f.net.MustAddNode("mcu"), f.clk)
	server := rtc.NewServer(mcuEP, f.clk)
	cid, err := server.CreateConference("design", rtc.ModeOpen)
	if err != nil {
		t.Fatal(err)
	}
	pEP := rpc.NewEndpoint(f.net.MustAddNode("prinz-node"), f.clk)
	sess := rtc.NewSession(pEP, f.clk, "mcu", cid, "prinz")

	drive := func(op func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- op() }()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
				return
			default:
				time.Sleep(200 * time.Microsecond)
				f.clk.Advance(10 * time.Millisecond)
			}
		}
	}
	drive(sess.Join)
	drive(func() error { return sess.Set("decision", "adopt odp") })
	drive(sess.Leave)
	f.clk.RunUntilIdle()

	sent, err := BridgeConference(f.hub, server, cid, []string{"prinz", "klaus"}, "meeting:design")
	if err != nil {
		t.Fatal(err)
	}
	if sent != 1 {
		t.Fatalf("digests sent = %d, want 1 (only klaus was absent)", sent)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.klaus.List()
	if len(msgs) != 1 {
		t.Fatalf("klaus mailbox = %d", len(msgs))
	}
	body := msgs[0].Envelope.Content.Body
	if !strings.Contains(body, "prinz set decision = adopt odp") {
		t.Fatalf("digest body = %q", body)
	}
	// prinz, who attended, got nothing.
	if f.prinz.Unread() != 0 {
		t.Fatal("attendee received a digest")
	}
}

func TestRenderDigestEmpty(t *testing.T) {
	if got := RenderDigest(nil); got != "(no recorded activity)" {
		t.Fatalf("empty digest = %q", got)
	}
}
