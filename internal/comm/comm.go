// Package comm implements the paper's Communication Model: "the
// communication model aims to represents communication in terms of the
// communicators, the information objects they exchange, and the context
// within which communication takes place."
//
// It unifies the repository's media — synchronous (rtc), store-and-forward
// (mhs), and the paper's "wide range of media, including telefax and where
// applicable paper communication" (simulated spools) — behind one Hub that
// routes with temporal transparency: online recipients get live delivery,
// offline recipients fall back to the MHS, and every exchange is recorded
// with its context.
package comm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mocca/internal/mhs"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

// Message is the unit communicators exchange.
type Message struct {
	From    string
	To      string
	Subject string
	Body    string
	// InfoObject optionally references a shared information object id —
	// the "information objects they exchange" of the model.
	InfoObject string
	// Context names the setting of the exchange (activity id, conference
	// id, or free-form) — the "context within which communication takes
	// place".
	Context string
}

// Exchange is the recorded form of a delivered message.
type Exchange struct {
	Message Message
	Medium  string
	At      time.Time
}

// Errors of the hub.
var (
	ErrUnknownUser   = errors.New("comm: unknown communicator")
	ErrUnknownMedium = errors.New("comm: unknown medium")
)

// LiveHandler receives synchronous deliveries for an online communicator.
type LiveHandler func(msg Message)

// communicator is a registered principal.
type communicator struct {
	name   string
	orName mhs.ORName
	ua     *mhs.UserAgent
	online bool
	live   LiveHandler
}

// Medium is a pluggable delivery channel beyond the built-in live/MHS pair.
type Medium interface {
	Name() string
	Deliver(msg Message) error
}

// Hub is the communication model service.
type Hub struct {
	clock    vclock.Clock
	selector *transparency.Selector

	mu        sync.Mutex
	users     map[string]*communicator
	media     map[string]Medium
	exchanges []Exchange
	stats     Stats
}

// Stats counts hub activity.
type Stats struct {
	Sent      int64
	SyncSent  int64
	AsyncSent int64
	MediaSent int64
	Failed    int64
}

// NewHub creates a hub using the given transparency selector.
func NewHub(clock vclock.Clock, selector *transparency.Selector) *Hub {
	return &Hub{
		clock:    clock,
		selector: selector,
		users:    make(map[string]*communicator),
		media:    make(map[string]Medium),
	}
}

// Register adds a communicator with their MHS user agent (which provides
// the asynchronous path). The user starts offline.
func (h *Hub) Register(name string, ua *mhs.UserAgent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.users[name] = &communicator{name: name, orName: ua.Name, ua: ua}
}

// RegisterSystem adds a sender-only communicator with no mailbox (bridges,
// gateways, devices). Async delivery TO it fails; sending FROM it works.
func (h *Hub) RegisterSystem(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.users[name]; !ok {
		h.users[name] = &communicator{name: name}
	}
}

// SetOnline marks a user present and installs their live handler; a nil
// handler with online=false marks them away.
func (h *Hub) SetOnline(name string, handler LiveHandler) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	u, ok := h.users[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, name)
	}
	u.online = handler != nil
	u.live = handler
	return nil
}

// Online reports presence.
func (h *Hub) Online(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	u, ok := h.users[name]
	return ok && u.online
}

// AddMedium registers an additional delivery medium (fax, paper, ...).
func (h *Hub) AddMedium(m Medium) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.media[strings.ToLower(m.Name())] = m
}

// Send routes the message with temporal transparency: online recipients
// get live delivery; offline recipients go store-and-forward via their
// MHS user agent — provided the sender selected time transparency.
func (h *Hub) Send(msg Message) (transparency.Mode, error) {
	h.mu.Lock()
	_, ok := h.users[msg.From]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: sender %q", ErrUnknownUser, msg.From)
	}
	rcpt, ok := h.users[msg.To]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: recipient %q", ErrUnknownUser, msg.To)
	}
	h.stats.Sent++
	h.mu.Unlock()

	router := &transparency.TimeRouter{
		Selector: h.selector,
		Presence: func(user string) bool { return h.Online(user) },
		Sync: func(user string, payload any) error {
			m := payload.(Message)
			h.mu.Lock()
			u := h.users[user]
			handler := u.live
			h.mu.Unlock()
			if handler == nil {
				return errors.New("comm: no live handler")
			}
			handler(m)
			return nil
		},
		Async: func(user string, payload any) error {
			m := payload.(Message)
			if rcpt.ua == nil {
				return fmt.Errorf("comm: %q has no store-and-forward mailbox", user)
			}
			// Submit into the recipient's home MTA addressed to their own
			// O/R name: local delivery into their message store.
			_, err := rcpt.ua.Send([]mhs.ORName{rcpt.ua.Name}, m.Subject, m.Body,
				mhs.WithHeader("comm-from", m.From),
				mhs.WithHeader("comm-context", m.Context),
				mhs.WithHeader("comm-info-object", m.InfoObject),
			)
			return err
		},
	}
	mode, err := router.Route(msg.From, msg.To, msg)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.stats.Failed++
		return "", err
	}
	switch mode {
	case transparency.ModeSync:
		h.stats.SyncSent++
	case transparency.ModeAsync:
		h.stats.AsyncSent++
	}
	h.recordLocked(Exchange{Message: msg, Medium: string(mode), At: h.clock.Now()})
	return mode, nil
}

// SendVia delivers through a named registered medium (fax, paper, ...) —
// "support for interchange across communication media".
func (h *Hub) SendVia(mediumName string, msg Message) error {
	h.mu.Lock()
	m, ok := h.media[strings.ToLower(mediumName)]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMedium, mediumName)
	}
	if err := m.Deliver(msg); err != nil {
		h.mu.Lock()
		h.stats.Failed++
		h.mu.Unlock()
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.MediaSent++
	h.recordLocked(Exchange{Message: msg, Medium: strings.ToLower(mediumName), At: h.clock.Now()})
	return nil
}

// Ingest accepts a message arriving FROM an external medium and re-routes
// it to the recipient through the normal transparent path — the inbound
// half of media interchange (e.g. an arriving fax reaching a mailbox).
func (h *Hub) Ingest(mediumName string, msg Message) (transparency.Mode, error) {
	h.mu.Lock()
	if _, ok := h.users[msg.From]; !ok {
		// External senders are implicitly registered as bare
		// communicators so the exchange log stays complete.
		h.users[msg.From] = &communicator{name: msg.From}
	}
	h.mu.Unlock()
	mode, err := h.Send(msg)
	if err != nil {
		return mode, fmt.Errorf("comm: ingest from %s: %w", mediumName, err)
	}
	return mode, nil
}

// Exchanges returns recorded exchanges, optionally filtered by context
// ("" = all), most recent last.
func (h *Hub) Exchanges(context string) []Exchange {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Exchange
	for _, ex := range h.exchanges {
		if context == "" || ex.Message.Context == context {
			out = append(out, ex)
		}
	}
	return out
}

// Communicators lists registered user names, sorted.
func (h *Hub) Communicators() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.users))
	for name := range h.users {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

func (h *Hub) recordLocked(ex Exchange) {
	h.exchanges = append(h.exchanges, ex)
	if len(h.exchanges) > 4096 {
		h.exchanges = h.exchanges[len(h.exchanges)-4096:]
	}
}

// Spool is a simulated print-like medium (telefax, paper): deliveries
// accumulate on a spool the "device" drains.
type Spool struct {
	name string

	mu    sync.Mutex
	items []Message
}

// NewSpool creates a named spool medium (e.g. "fax", "paper").
func NewSpool(name string) *Spool { return &Spool{name: name} }

// Name implements Medium.
func (s *Spool) Name() string { return s.name }

// Deliver implements Medium.
func (s *Spool) Deliver(msg Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, msg)
	return nil
}

// Drain removes and returns all spooled items.
func (s *Spool) Drain() []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.items
	s.items = nil
	return out
}

// Len returns the number of spooled items.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
