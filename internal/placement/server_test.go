package placement

import (
	"errors"
	"testing"
	"time"

	"mocca/internal/directory"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/trader"
	"mocca/internal/vclock"
)

// readFixture is a minimal trader-mediated read/forward mesh: named
// holder sites each serving a replica, plus one reading site "rd".
type readFixture struct {
	clk     *vclock.Simulated
	net     *netsim.Network
	trading *trader.Trader
	policy  *Policy
	reader  *Reader
	spaces  map[string]*information.Space
	servers map[string]*ReadServer
}

func newReadFixture(t *testing.T, holders []string, readerOpts ...ReaderOption) *readFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(9))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	trading := trader.New()
	if err := trading.RegisterType(ServiceType); err != nil {
		t.Fatal(err)
	}
	f := &readFixture{
		clk: clk, net: net, trading: trading, policy: NewPolicy(),
		spaces: make(map[string]*information.Space), servers: make(map[string]*ReadServer),
	}
	for _, h := range holders {
		sp := information.NewSpace(registry, nil, clk, information.WithSite(h))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("place-"+h)), clk)
		hh := h
		f.spaces[h] = sp
		f.servers[h] = NewReadServer(ep, h, func() *information.Space { return f.spaces[hh] },
			WithHolderPolicy(f.policy))
		if err := trading.Export(trader.Offer{
			ID:          OfferID(h, DefaultSpace),
			ServiceType: ServiceType,
			Provider:    netsim.Address("place-" + h),
			Properties:  directory.NewAttributes(SpaceProp, DefaultSpace, SiteProp, h),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ep := rpc.NewEndpoint(net.MustAddNode("place-rd"), clk)
	f.reader = NewReader(ep, trading, "rd", append([]ReaderOption{WithNegativeCache(f.policy)}, readerOpts...)...)
	return f
}

// drive runs op on a helper goroutine while advancing the simulated
// clock from the test goroutine.
func (f *readFixture) drive(t *testing.T, op func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			return err
		case <-deadline:
			t.Fatal("simulated op did not complete")
		default:
			time.Sleep(200 * time.Microsecond)
			f.clk.Advance(20 * time.Millisecond)
		}
	}
}

func (f *readFixture) read(t *testing.T, id string) error {
	t.Helper()
	return f.drive(t, func() error {
		_, _, err := f.reader.Read("ada", id)
		return err
	})
}

// TestNegativeCacheShortCircuitsRepeatedMisses: a miss every holder
// definitively refused is cached under (policy version, write
// generation); repeated reads stop walking the offers, and both a Bump
// and a policy change re-open the walk.
func TestNegativeCacheShortCircuitsRepeatedMisses(t *testing.T) {
	f := newReadFixture(t, []string{"h0", "h1"})
	if err := f.read(t, "info-missing"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("first read err = %v, want ErrNoHolder", err)
	}
	s := f.reader.Stats()
	if s.Attempts != 2 || s.NegativeStores != 1 {
		t.Fatalf("first-read stats = %+v", s)
	}

	// Cached: no holder walk at all.
	if err := f.read(t, "info-missing"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("cached read err = %v", err)
	}
	s = f.reader.Stats()
	if s.Attempts != 2 || s.NegativeHits != 1 {
		t.Fatalf("cached-read stats = %+v", s)
	}

	// A local/applied write invalidates the cache.
	f.reader.Bump()
	if err := f.read(t, "info-missing"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("post-bump read err = %v", err)
	}
	if s = f.reader.Stats(); s.Attempts != 4 {
		t.Fatalf("post-bump stats = %+v", s)
	}

	// A policy change invalidates it too.
	f.policy.Use(ByField("body", "scoped", "h0"))
	if err := f.read(t, "info-missing"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("post-policy read err = %v", err)
	}
	if s = f.reader.Stats(); s.Attempts != 6 {
		t.Fatalf("post-policy stats = %+v", s)
	}
}

// TestNegativeCacheTTLBoundsStaleness: with a TTL configured, a cached
// miss expires on the clock — an id created later at a remote-only
// holder becomes readable within one TTL, with no local write (Bump)
// and no policy change on the reading site.
func TestNegativeCacheTTLBoundsStaleness(t *testing.T) {
	var f *readFixture
	f = newReadFixture(t, []string{"h0", "h1"},
		WithNegativeTTL(5*time.Second, func() time.Time { return f.clk.Now() }))

	if err := f.read(t, "info-late"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("first read err = %v, want ErrNoHolder", err)
	}
	if err := f.read(t, "info-late"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("cached read err = %v", err)
	}
	s := f.reader.Stats()
	if s.NegativeStores != 1 || s.NegativeHits != 1 || s.Attempts != 2 {
		t.Fatalf("pre-expiry stats = %+v", s)
	}

	// The object now springs into existence at a holder, and the TTL
	// elapses. No Bump, no policy change.
	if _, _, err := f.spaces["h0"].ApplyRemote(mkObject(f.clk, "info-late")); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(6 * time.Second)

	if err := f.read(t, "info-late"); err != nil {
		t.Fatalf("post-expiry read err = %v, want served", err)
	}
	s = f.reader.Stats()
	if s.NegativeExpired != 1 || s.Served != 1 {
		t.Fatalf("post-expiry stats = %+v", s)
	}
}

// TestMissesAcrossDownHoldersAreNotCached: a read that failed because a
// holder was unreachable is not a definitive miss — the object might
// live exactly there — so it must not enter the negative cache.
func TestMissesAcrossDownHoldersAreNotCached(t *testing.T) {
	f := newReadFixture(t, []string{"h0", "h1"})
	if node, ok := f.net.Node("place-h1"); ok {
		node.SetDown(true)
	} else {
		t.Fatal("place-h1 missing")
	}
	if err := f.read(t, "info-missing"); !errors.Is(err, ErrNoHolder) {
		t.Fatalf("read err = %v", err)
	}
	if s := f.reader.Stats(); s.NegativeStores != 0 {
		t.Fatalf("indefinite miss was cached: %+v", s)
	}
}

// TestFailureCooldownRotatesHolders: after a holder times out, the next
// resolutions defer it to the tail of the scan instead of paying its
// timeout up front on every read.
func TestFailureCooldownRotatesHolders(t *testing.T) {
	f := newReadFixture(t, []string{"h0", "h1"})
	obj, err := f.spaces["h1"].Put("ada", "doc", map[string]string{"title": "held"})
	if err != nil {
		t.Fatal(err)
	}
	if node, ok := f.net.Node("place-h0"); ok {
		node.SetDown(true)
	} else {
		t.Fatal("place-h0 missing")
	}

	// First read pays h0's timeout, then h1 serves.
	if err := f.read(t, obj.ID); err != nil {
		t.Fatal(err)
	}
	s := f.reader.Stats()
	if s.Served != 1 || s.Attempts != 2 || s.SkippedHolders != 0 {
		t.Fatalf("first-read stats = %+v", s)
	}

	// Second read defers h0: h1 answers on the first attempt.
	if err := f.read(t, obj.ID); err != nil {
		t.Fatal(err)
	}
	s = f.reader.Stats()
	if s.Served != 2 || s.Attempts != 3 || s.SkippedHolders != 1 {
		t.Fatalf("second-read stats = %+v", s)
	}
}

// mkObject builds a foreign row as a non-placed site would hold it after
// a local Put.
func mkObject(clk vclock.Clock, id string) *information.Object {
	now := clk.Now()
	return &information.Object{
		ID: id, Schema: "doc", Owner: "ada",
		Fields:  map[string]string{"title": "routed", "body": "scoped"},
		Version: 1, VV: vclock.NewVersion("rd"), Site: "rd",
		Created: now, Updated: now,
	}
}

// TestForwardWriteReachesPlacedHolder: a write forwarded off a
// non-placed site lands on a placed holder's replica.
func TestForwardWriteReachesPlacedHolder(t *testing.T) {
	f := newReadFixture(t, []string{"h0", "h1"})
	f.policy.Use(ByField("body", "scoped", "h1"))
	obj := mkObject(f.clk, "info-fwd")

	var gotSite string
	var gotErr error
	f.reader.Forward(obj, f.policy.SitesFor(Describe(obj)), func(site string, err error) {
		gotSite, gotErr = site, err
	})
	f.clk.RunUntilIdle()
	if gotErr != nil || gotSite != "h1" {
		t.Fatalf("forward = %q, %v", gotSite, gotErr)
	}
	if got, ok := f.spaces["h1"].Fetch(obj.ID); !ok || got.Fields["title"] != "routed" {
		t.Fatalf("holder replica missing forwarded row: %v %v", got, ok)
	}
	if _, ok := f.spaces["h0"].Fetch(obj.ID); ok {
		t.Fatal("forward landed on a non-placed holder")
	}
	if s := f.servers["h1"].Stats(); s.WritesAccepted != 1 {
		t.Fatalf("holder stats = %+v", s)
	}
	if s := f.reader.Stats(); s.Forwards != 1 || s.Forwarded != 1 {
		t.Fatalf("reader stats = %+v", s)
	}
}

// TestForwardWriteFailsWhenNoHolderReachable: the sole placed holder is
// down — the forward reports ErrNoHolder so the writer keeps its copy.
func TestForwardWriteFailsWhenNoHolderReachable(t *testing.T) {
	f := newReadFixture(t, []string{"h0"})
	f.policy.Use(ByField("body", "scoped", "h0"))
	if node, ok := f.net.Node("place-h0"); ok {
		node.SetDown(true)
	}
	obj := mkObject(f.clk, "info-stuck")
	var gotErr error
	f.reader.Forward(obj, f.policy.SitesFor(Describe(obj)), func(_ string, err error) { gotErr = err })
	f.clk.RunUntilIdle()
	if !errors.Is(gotErr, ErrNoHolder) {
		t.Fatalf("forward err = %v, want ErrNoHolder", gotErr)
	}
}

// TestForwardWriteRefusedByMovedPolicy: the policy moves while the
// forward is in flight; the holder refuses and the forward falls through
// to ErrNoHolder (no other placed holder exists).
func TestForwardWriteRefusedByMovedPolicy(t *testing.T) {
	f := newReadFixture(t, []string{"h0"})
	f.policy.Use(ByField("body", "scoped", "h0"))
	obj := mkObject(f.clk, "info-moved")
	pl := f.policy.SitesFor(Describe(obj))
	// The space moves away before the forward lands.
	f.policy.Use(ByField("body", "scoped", "h9"))
	var gotErr error
	f.reader.Forward(obj, pl, func(_ string, err error) { gotErr = err })
	f.clk.RunUntilIdle()
	if !errors.Is(gotErr, ErrNoHolder) {
		t.Fatalf("forward err = %v, want ErrNoHolder", gotErr)
	}
	if s := f.servers["h0"].Stats(); s.WritesRefused != 1 {
		t.Fatalf("holder stats = %+v", s)
	}
}
