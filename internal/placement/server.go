package placement

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/trader"
)

// Trading vocabulary of the placement subsystem: every site exports one
// offer per space it hosts, and a non-placed site imports the type to
// resolve a holder for a remote read.
const (
	// ServiceType is the trader service type of placement offers.
	ServiceType = "information-placement"
	// SpaceProp / SiteProp are the offer properties naming the hosted
	// space and the hosting site.
	SpaceProp = "space"
	SiteProp  = "site"
	// MethodRead is the rpc method a holder serves remote reads on.
	MethodRead = "placement.read"
	// DefaultReadTimeout bounds each holder attempt so a dead holder
	// degrades the read to the next offer instead of consuming the caller.
	DefaultReadTimeout = 800 * time.Millisecond
)

// OfferID builds the deterministic trader offer id for a (site, space)
// hosting claim.
func OfferID(site, space string) string { return "placement/" + site + "/" + space }

// ErrNoHolder reports a remote read that found no reachable replica
// holding the object.
var ErrNoHolder = errors.New("placement: no reachable holder")

type readReq struct {
	Actor    string `json:"actor"`
	ObjectID string `json:"objectId"`
}

type readResp struct {
	Site   string                 `json:"site"`
	Object information.WireObject `json:"object"`
}

// ReadServerStats counts remote reads served by a holder.
type ReadServerStats struct {
	Served int64 // reads answered with an object
	Missed int64 // reads refused (unknown object or access denied)
}

// ReadServer serves MethodRead for one site: remote readers resolve this
// site through the trader and read objects out of its replica. Access
// control is the space's own — the shared ACL system means a grant made
// anywhere is effective here too.
type ReadServer struct {
	site  string
	space func() *information.Space

	mu    sync.Mutex
	stats ReadServerStats
}

// NewReadServer registers the read handler on the endpoint. space is a
// provider, not a pointer, because a crash/restart swaps the site's
// replica: reads must always hit the current one.
func NewReadServer(ep *rpc.Endpoint, site string, space func() *information.Space) *ReadServer {
	s := &ReadServer{site: site, space: space}
	ep.MustRegister(MethodRead, rpc.HandleJSON(func(_ netsim.Address, req readReq) (readResp, error) {
		obj, err := s.space().Get(req.Actor, req.ObjectID)
		if err != nil {
			s.mu.Lock()
			s.stats.Missed++
			s.mu.Unlock()
			return readResp{}, err
		}
		s.mu.Lock()
		s.stats.Served++
		s.mu.Unlock()
		return readResp{Site: s.site, Object: information.ToWire(obj)}, nil
	}))
	return s
}

// Stats returns a snapshot of the counters.
func (s *ReadServer) Stats() ReadServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ReaderStats counts remote reads issued by a non-placed site.
type ReaderStats struct {
	Reads    int64 // read-throughs attempted
	Served   int64 // read-throughs satisfied by some holder
	Attempts int64 // per-holder rpc attempts (retries across offers)
	NoHolder int64 // read-throughs that exhausted every offer
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithReadTimeout bounds each holder attempt.
func WithReadTimeout(d time.Duration) ReaderOption {
	return func(r *Reader) { r.timeout = d }
}

// Reader performs trader-mediated remote reads for one site: it imports
// the placement offers, skips its own, and interrogates holders in
// deterministic offer order until one serves the object. This is the
// engineering half of location transparency — with the transparency
// selected, SiteEnv.Get makes a non-placed site look like it holds
// everything; deselecting it surfaces which holder actually served.
type Reader struct {
	ep      *rpc.Endpoint
	trading *trader.Trader
	site    string
	timeout time.Duration

	mu    sync.Mutex
	stats ReaderStats
}

// NewReader builds a reader resolving holders through the given trader.
func NewReader(ep *rpc.Endpoint, trading *trader.Trader, site string, opts ...ReaderOption) *Reader {
	r := &Reader{ep: ep, trading: trading, site: site, timeout: DefaultReadTimeout}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Stats returns a snapshot of the counters.
func (r *Reader) Stats() ReaderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Read resolves the object through the trader and reads it from the
// first holder that answers, returning the object and the serving site.
// Holders are tried in offer-id order (deterministic); a holder that is
// down or does not have the object degrades the read to the next offer.
// When every offer is exhausted the error wraps ErrNoHolder and carries
// the last holder failure — the useful message for "the sole holder is
// down".
func (r *Reader) Read(actor, objID string) (*information.Object, string, error) {
	r.bump(func(s *ReaderStats) { s.Reads++ })
	offers, err := r.trading.Import(trader.ImportRequest{ServiceType: ServiceType, Importer: actor})
	if err != nil {
		return nil, "", fmt.Errorf("placement: resolve %q: %w", objID, err)
	}
	// One attempt per provider: several hosted spaces share a read
	// endpoint, and the reader cannot map an unknown id to a space.
	tried := make(map[netsim.Address]bool, len(offers))
	var lastErr error
	attempts := 0
	for _, o := range offers {
		if o.Properties.First(SiteProp) == r.site || tried[o.Provider] {
			continue
		}
		tried[o.Provider] = true
		attempts++
		r.bump(func(s *ReaderStats) { s.Attempts++ })
		var resp readResp
		if err := r.ep.CallJSON(o.Provider, MethodRead, readReq{Actor: actor, ObjectID: objID}, &resp,
			rpc.CallTimeout(r.timeout)); err != nil {
			lastErr = err
			continue
		}
		r.bump(func(s *ReaderStats) { s.Served++ })
		return information.FromWire(resp.Object), resp.Site, nil
	}
	r.bump(func(s *ReaderStats) { s.NoHolder++ })
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w for object %q (site %s tried %d holders, last error: %v)",
			ErrNoHolder, objID, r.site, attempts, lastErr)
	}
	return nil, "", fmt.Errorf("%w for object %q (site %s found %d placement offers)",
		ErrNoHolder, objID, r.site, len(offers))
}

func (r *Reader) bump(fn func(*ReaderStats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}
