package placement

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/rpc"
	"mocca/internal/trader"
	"mocca/internal/wire"
)

// Trading vocabulary of the placement subsystem: every site exports one
// offer per space it hosts, and a non-placed site imports the type to
// resolve a holder for a remote read (or to forward a stranded write).
const (
	// ServiceType is the trader service type of placement offers.
	ServiceType = "information-placement"
	// SpaceProp / SiteProp are the offer properties naming the hosted
	// space and the hosting site.
	SpaceProp = "space"
	SiteProp  = "site"
	// MethodRead is the rpc method a holder serves remote reads on.
	MethodRead = "placement.read"
	// MethodWrite is the rpc method a holder accepts forwarded writes on:
	// a Put that landed at a non-placed site routes the row to a placed
	// holder instead of stranding a foreign copy until migration.
	MethodWrite = "placement.write"
	// DefaultReadTimeout bounds each holder attempt so a dead holder
	// degrades the read to the next offer instead of consuming the caller.
	DefaultReadTimeout = 800 * time.Millisecond
	// DefaultFailureCooldown is how many subsequent resolutions skip (try
	// last) a holder after a failed attempt, so one down holder does not
	// tax the front of every read.
	DefaultFailureCooldown = 4
	// DefaultNegativeCacheSize bounds the negative-lookup cache.
	DefaultNegativeCacheSize = 1024
	// DefaultNegativeTTL bounds how stale a cached miss may grow: an id
	// created later at a remote-only site becomes readable again within
	// one TTL even if this site never writes and the policy never moves.
	DefaultNegativeTTL = 30 * time.Second
)

// OfferID builds the deterministic trader offer id for a (site, space)
// hosting claim.
func OfferID(site, space string) string { return "placement/" + site + "/" + space }

// ErrNoHolder reports a remote read that found no reachable replica
// holding the object.
var ErrNoHolder = errors.New("placement: no reachable holder")

type readReq struct {
	Actor    string `json:"actor"`
	ObjectID string `json:"objectId"`
}

type readResp struct {
	Site   string                 `json:"site"`
	Object information.WireObject `json:"object"`
}

type writeReq struct {
	Site   string                 `json:"site"`
	Object information.WireObject `json:"object"`
}

type writeResp struct {
	Site    string `json:"site"`
	Applied bool   `json:"applied"`
}

// ReadServerStats counts remote reads and forwarded writes served by a
// holder.
type ReadServerStats struct {
	Served int64 // reads answered with an object
	Missed int64 // reads refused (unknown object or access denied)

	WritesAccepted int64 // forwarded writes merged into the replica
	WritesRefused  int64 // forwarded writes refused (not placed here)
}

// ReadServerOption configures a ReadServer.
type ReadServerOption func(*ReadServer)

// WithHolderPolicy lets the server refuse forwarded writes of objects
// this site is not placed for (the policy may have moved while the
// forward was in flight). A nil policy accepts every forward.
func WithHolderPolicy(p *Policy) ReadServerOption {
	return func(s *ReadServer) { s.policy = p }
}

// WithServerTelemetry attaches the deployment telemetry: a forwarded
// write that lands here re-tags the object with the serve-span context,
// so the WAL commit and later anti-entropy hops at this site parent
// under the forward instead of starting orphan traces.
func WithServerTelemetry(tel *observe.Telemetry) ReadServerOption {
	return func(s *ReadServer) {
		if tel != nil {
			s.objects = tel.Objects
		}
	}
}

// ReadServer serves MethodRead and MethodWrite for one site: remote
// readers resolve this site through the trader and read objects out of
// its replica; non-placed writers forward stranded rows in. Access
// control is the space's own — the shared ACL system means a grant made
// anywhere is effective here too.
type ReadServer struct {
	site    string
	space   func() *information.Space
	policy  *Policy
	objects *observe.ObjectTraces

	mu    sync.Mutex
	stats ReadServerStats
}

// NewReadServer registers the read and write handlers on the endpoint.
// space is a provider, not a pointer, because a crash/restart swaps the
// site's replica: reads must always hit the current one.
func NewReadServer(ep *rpc.Endpoint, site string, space func() *information.Space, opts ...ReadServerOption) *ReadServer {
	s := &ReadServer{site: site, space: space}
	for _, opt := range opts {
		opt(s)
	}
	ep.MustRegister(MethodRead, rpc.HandleJSON(func(_ netsim.Address, req readReq) (readResp, error) {
		obj, err := s.space().Get(req.Actor, req.ObjectID)
		if err != nil {
			s.bump(func(st *ReadServerStats) { st.Missed++ })
			return readResp{}, err
		}
		s.bump(func(st *ReadServerStats) { st.Served++ })
		return readResp{Site: s.site, Object: information.ToWire(obj)}, nil
	}))
	ep.MustRegister(MethodWrite, rpc.HandleJSONCtx(func(_ netsim.Address, tc wire.TraceContext, req writeReq) (writeResp, error) {
		obj := information.FromWire(req.Object)
		if s.policy != nil && s.policy.Selective() && !s.policy.PlacedAt(s.site, Describe(obj)) {
			// The space moved again while the forward was in flight: the
			// writer must keep its copy (or re-resolve).
			s.bump(func(st *ReadServerStats) { st.WritesRefused++ })
			return writeResp{}, fmt.Errorf("placement: site %q not placed for %q", s.site, obj.ID)
		}
		// Re-tag before applying: the apply fires write events (WAL
		// append, replicator dirtying) that look the context up by id.
		s.objects.Tag(obj.ID, tc)
		changed, _, err := s.space().ApplyRemote(obj)
		if err != nil {
			s.bump(func(st *ReadServerStats) { st.WritesRefused++ })
			return writeResp{}, err
		}
		s.bump(func(st *ReadServerStats) { st.WritesAccepted++ })
		return writeResp{Site: s.site, Applied: changed}, nil
	}))
	return s
}

// Stats returns a snapshot of the counters.
func (s *ReadServer) Stats() ReadServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *ReadServer) bump(fn func(*ReadServerStats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

// ReaderStats counts remote resolutions issued by a non-placed site.
type ReaderStats struct {
	Reads    int64 // read-throughs attempted
	Served   int64 // read-throughs satisfied by some holder
	Attempts int64 // per-holder rpc attempts (retries across offers)
	NoHolder int64 // read-throughs that exhausted every offer

	NegativeHits    int64 // reads short-circuited by the negative cache
	NegativeStores  int64 // definitive misses recorded in the cache
	NegativeExpired int64 // cached misses dropped by the staleness TTL
	SkippedHolders  int64 // recently-failed holders deferred to the scan tail

	Forwards  int64 // write forwards attempted
	Forwarded int64 // write forwards a holder accepted
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithReadTimeout bounds each holder attempt.
func WithReadTimeout(d time.Duration) ReaderOption {
	return func(r *Reader) { r.timeout = d }
}

// WithNegativeCache enables the negative-lookup cache scoped by the
// policy's version: a read that every reachable holder refused with
// "unknown object" (not a timeout, not an access denial) is remembered,
// so repeated reads of a missing id stop walking the trader offers. Any
// policy change, or any local/applied write at THIS site signalled
// through Bump, flushes the cache. Writes at other sites the policy
// keeps away from this replica do not reach Bump — an id that springs
// into existence remotely stays a cached miss until the next local
// write, policy change, or cache eviction; the cache trades that
// staleness window for not walking every offer on every repeated miss.
func WithNegativeCache(p *Policy) ReaderOption {
	return func(r *Reader) { r.policy = p }
}

// WithNegativeCacheSize bounds the cache (default
// DefaultNegativeCacheSize); 0 keeps the default.
func WithNegativeCacheSize(n int) ReaderOption {
	return func(r *Reader) {
		if n > 0 {
			r.negCap = n
		}
	}
}

// WithNegativeTTL bounds the staleness of cached misses: a negative
// entry older than ttl (by the given clock) is dropped and the read
// walks the holders again. This closes the staleness window documented
// on WithNegativeCache — an id that springs into existence at a
// remote-only site becomes readable within one TTL, without waiting for
// a local write, a policy change, or a capacity eviction. ttl <= 0 or a
// nil clock disables expiry (version/generation scoping still applies).
func WithNegativeTTL(ttl time.Duration, now func() time.Time) ReaderOption {
	return func(r *Reader) {
		r.negTTL = ttl
		r.now = now
	}
}

// WithFailureCooldown sets for how many subsequent resolutions a failed
// holder is deferred to the tail of the scan (default
// DefaultFailureCooldown); 0 disables the deferral.
func WithFailureCooldown(n int) ReaderOption {
	return func(r *Reader) { r.cooldown = n }
}

// WithReaderTelemetry attaches the deployment telemetry: Forward opens
// a child span under the originating write's trace (looked up by object
// id) and stamps every holder attempt with it, so the forward hop shows
// up between the local put and the holder-side serve span.
func WithReaderTelemetry(tel *observe.Telemetry) ReaderOption {
	return func(r *Reader) {
		if tel != nil {
			r.tracer = tel.Tracer
			r.objects = tel.Objects
		}
	}
}

// negEntry scopes one cached miss: valid only while both the policy
// version and the local write generation are unchanged, and — when a
// TTL is configured — only within the staleness bound of its store time.
type negEntry struct {
	policyVer uint64
	gen       uint64
	at        time.Time
}

// Reader performs trader-mediated remote resolutions for one site:
// reads of objects the local replica does not hold, and forwards of
// writes the site is not placed for. Holders are tried in deterministic
// offer order, except that recently-failed holders are deferred to the
// tail of the scan — a down first holder stops taxing every read — and
// definitive misses are negative-cached under the policy version.
type Reader struct {
	ep       *rpc.Endpoint
	trading  *trader.Trader
	site     string
	timeout  time.Duration
	policy   *Policy // enables the negative cache when set
	negCap   int
	negTTL   time.Duration    // bounded staleness of cached misses; 0 = no expiry
	now      func() time.Time // clock the TTL is measured against
	cooldown int
	tracer   *observe.Tracer
	objects  *observe.ObjectTraces

	mu    sync.Mutex
	stats ReaderStats
	neg   map[string]negEntry
	gen   uint64 // bumped by Bump (local/applied writes at this site)
	fails map[netsim.Address]int
}

// NewReader builds a reader resolving holders through the given trader.
func NewReader(ep *rpc.Endpoint, trading *trader.Trader, site string, opts ...ReaderOption) *Reader {
	r := &Reader{
		ep:       ep,
		trading:  trading,
		site:     site,
		timeout:  DefaultReadTimeout,
		negCap:   DefaultNegativeCacheSize,
		cooldown: DefaultFailureCooldown,
		neg:      make(map[string]negEntry),
		fails:    make(map[netsim.Address]int),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Stats returns a snapshot of the counters.
func (r *Reader) Stats() ReaderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Bump invalidates the negative cache: a write landed on (or was applied
// to, or evicted from) this site's replica, so cached misses may be
// stale. The deployment layer wires this to the site space's events.
func (r *Reader) Bump() {
	r.mu.Lock()
	r.gen++
	r.mu.Unlock()
}

// negHit reports whether a definitive miss for objID is cached and still
// valid under the current policy version and write generation.
func (r *Reader) negHit(objID string) bool {
	if r.policy == nil {
		return false
	}
	pv := r.policy.Version()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.neg[objID]
	if !ok {
		return false
	}
	if e.policyVer != pv || e.gen != r.gen {
		delete(r.neg, objID)
		return false
	}
	if r.negTTL > 0 && r.now != nil && r.now().Sub(e.at) > r.negTTL {
		delete(r.neg, objID)
		r.stats.NegativeExpired++
		return false
	}
	r.stats.NegativeHits++
	return true
}

// negStore records a definitive miss, evicting an arbitrary entry when
// the cache is full (entries are equally cheap to recompute).
func (r *Reader) negStore(objID string) {
	if r.policy == nil {
		return
	}
	pv := r.policy.Version()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.neg) >= r.negCap {
		for k := range r.neg {
			delete(r.neg, k)
			break
		}
	}
	e := negEntry{policyVer: pv, gen: r.gen}
	if r.negTTL > 0 && r.now != nil {
		e.at = r.now()
	}
	r.neg[objID] = e
	r.stats.NegativeStores++
}

// holderOrder partitions the candidate providers into fresh holders (in
// the given deterministic order) followed by recently-failed ones — the
// rotation that keeps a down holder off the front of the scan while the
// full scan remains the fallback. Each deferral consumes one unit of the
// holder's cooldown.
func (r *Reader) holderOrder(providers []netsim.Address) []netsim.Address {
	if r.cooldown <= 0 {
		return providers
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var fresh, cooled []netsim.Address
	for _, p := range providers {
		if left := r.fails[p]; left > 0 {
			r.fails[p] = left - 1
			if r.fails[p] == 0 {
				delete(r.fails, p)
			}
			cooled = append(cooled, p)
			r.stats.SkippedHolders++
			continue
		}
		fresh = append(fresh, p)
	}
	return append(fresh, cooled...)
}

// noteFailure puts a holder on cooldown; noteSuccess clears it.
func (r *Reader) noteFailure(p netsim.Address) {
	if r.cooldown <= 0 {
		return
	}
	r.mu.Lock()
	r.fails[p] = r.cooldown
	r.mu.Unlock()
}

func (r *Reader) noteSuccess(p netsim.Address) {
	r.mu.Lock()
	delete(r.fails, p)
	r.mu.Unlock()
}

// providers imports the placement offers and returns the candidate
// provider addresses in deterministic offer order, excluding this site
// and (when sites is non-nil) any site outside the set, de-duplicated.
func (r *Reader) providers(actor string, sites []string) ([]netsim.Address, error) {
	offers, err := r.trading.Import(trader.ImportRequest{ServiceType: ServiceType, Importer: actor})
	if err != nil {
		return nil, err
	}
	var allowed map[string]bool
	if sites != nil {
		allowed = make(map[string]bool, len(sites))
		for _, s := range sites {
			allowed[s] = true
		}
	}
	// One attempt per provider: several hosted spaces share a read
	// endpoint, and the reader cannot map an unknown id to a space.
	seen := make(map[netsim.Address]bool, len(offers))
	var out []netsim.Address
	for _, o := range offers {
		site := o.Properties.First(SiteProp)
		if site == r.site || seen[o.Provider] {
			continue
		}
		if allowed != nil && !allowed[site] {
			continue
		}
		seen[o.Provider] = true
		out = append(out, o.Provider)
	}
	return out, nil
}

// Read resolves the object through the trader and reads it from the
// first holder that answers, returning the object and the serving site.
// Holders are tried in offer-id order (deterministic), with
// recently-failed holders deferred to the tail; a holder that is down or
// does not have the object degrades the read to the next one. When every
// offer is exhausted the error wraps ErrNoHolder and carries the last
// holder failure — the useful message for "the sole holder is down".
// Misses every holder definitively refused are negative-cached (see
// WithNegativeCache) so the next read of the same id is immediate.
func (r *Reader) Read(actor, objID string) (*information.Object, string, error) {
	r.bump(func(s *ReaderStats) { s.Reads++ })
	if r.negHit(objID) {
		return nil, "", fmt.Errorf("%w for object %q (site %s, cached miss)", ErrNoHolder, objID, r.site)
	}
	candidates, err := r.providers(actor, nil)
	if err != nil {
		return nil, "", fmt.Errorf("placement: resolve %q: %w", objID, err)
	}
	var lastErr error
	attempts, definitive := 0, 0
	for _, provider := range r.holderOrder(candidates) {
		attempts++
		r.bump(func(s *ReaderStats) { s.Attempts++ })
		var resp readResp
		if err := r.ep.CallJSON(provider, MethodRead, readReq{Actor: actor, ObjectID: objID}, &resp,
			rpc.CallTimeout(r.timeout)); err != nil {
			var re *rpc.RemoteError
			if errors.As(err, &re) {
				// The holder answered, so it is healthy. Only an
				// unknown-object refusal is a definitive miss: an
				// access-denied answer is about THIS actor's grants, and
				// caching it would block every other actor's reads of a
				// row the holder does serve.
				if strings.Contains(re.Msg, information.ErrUnknownObject.Error()) {
					definitive++
				}
				r.noteSuccess(provider)
			} else {
				r.noteFailure(provider)
			}
			lastErr = err
			continue
		}
		r.noteSuccess(provider)
		r.bump(func(s *ReaderStats) { s.Served++ })
		return information.FromWire(resp.Object), resp.Site, nil
	}
	r.bump(func(s *ReaderStats) { s.NoHolder++ })
	if attempts > 0 && definitive == attempts {
		// Every holder was reached and none has the object: the miss is a
		// property of the information space, cacheable until something
		// writes or the policy moves.
		r.negStore(objID)
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w for object %q (site %s tried %d holders, last error: %v)",
			ErrNoHolder, objID, r.site, attempts, lastErr)
	}
	return nil, "", fmt.Errorf("%w for object %q (site %s found %d placement offers)",
		ErrNoHolder, objID, r.site, len(candidates))
}

// Forward routes a write that landed at this (non-placed) site to a
// placed holder, trader-resolved like a read-through but asynchronous —
// it is called from write-event callbacks under the simulated clock and
// must not block. Holders placed for the object are tried in the same
// failure-aware order as reads; done receives the accepting site, or an
// error wrapping ErrNoHolder when no placed holder is reachable (the
// caller then keeps its foreign copy — forwarding never destroys the
// only copy).
func (r *Reader) Forward(obj *information.Object, pl Placement, done func(site string, err error)) {
	if done == nil {
		done = func(string, error) {}
	}
	r.bump(func(s *ReaderStats) { s.Forwards++ })

	// Continue the originating write's trace across the async hop: the
	// put at this site tagged the object id with its root context, so
	// the forward span nests under it and every holder attempt carries
	// the forward span's context on the wire.
	forwardCtx, _ := r.objects.Lookup(obj.ID)
	var span observe.ActiveSpan
	if !forwardCtx.IsZero() && r.tracer.On() {
		span = r.tracer.StartChild("placement.forward", r.site, forwardCtx)
		span.SetAttr("object", obj.ID)
		forwardCtx = span.Context()
	}
	finish := func(site string, err error) {
		if err != nil {
			span.EndStatus("error")
		} else {
			span.SetAttr("holder", site)
			span.End()
		}
		done(site, err)
	}

	sites := pl.Sites
	if pl.Everywhere {
		sites = nil // any holder will do
	}
	candidates, err := r.providers(obj.Owner, sites)
	if err != nil {
		finish("", fmt.Errorf("placement: forward %q: %w", obj.ID, err))
		return
	}
	ordered := r.holderOrder(candidates)
	req := writeReq{Site: r.site, Object: information.ToWire(obj)}
	var attempt func(i int, lastErr error)
	attempt = func(i int, lastErr error) {
		if i >= len(ordered) {
			if lastErr != nil {
				finish("", fmt.Errorf("%w for forwarded write %q (site %s tried %d holders, last error: %v)",
					ErrNoHolder, obj.ID, r.site, len(ordered), lastErr))
			} else {
				finish("", fmt.Errorf("%w for forwarded write %q (site %s found no placed holder)",
					ErrNoHolder, obj.ID, r.site))
			}
			return
		}
		provider := ordered[i]
		r.bump(func(s *ReaderStats) { s.Attempts++ })
		r.ep.GoJSON(provider, MethodWrite, req, func(res rpc.Result) {
			var resp writeResp
			if err := res.Decode(&resp); err != nil {
				var re *rpc.RemoteError
				if errors.As(err, &re) {
					r.noteSuccess(provider) // reachable, just refused
				} else {
					r.noteFailure(provider)
				}
				attempt(i+1, err)
				return
			}
			r.noteSuccess(provider)
			r.bump(func(s *ReaderStats) { s.Forwarded++ })
			finish(resp.Site, nil)
		}, rpc.CallTimeout(r.timeout), rpc.CallTrace(forwardCtx))
	}
	attempt(0, nil)
}

func (r *Reader) bump(fn func(*ReaderStats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}
