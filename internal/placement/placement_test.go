package placement

import (
	"errors"
	"testing"
	"time"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/trader"
	"mocca/internal/vclock"
)

func TestPolicyDefaultIsEverywhere(t *testing.T) {
	p := NewPolicy()
	d := Descriptor{ID: "x", Schema: "doc"}
	pl := p.SitesFor(d)
	if !pl.Everywhere || pl.Space != DefaultSpace || pl.Rule != "" {
		t.Fatalf("default placement = %+v", pl)
	}
	for _, site := range []string{"gmd", "upc", "anything"} {
		if !p.PlacedAt(site, d) {
			t.Fatalf("default policy excluded %s", site)
		}
	}
	if p.Selective() {
		t.Fatal("empty policy reports selective")
	}
	st := p.Stats()
	if st.Decisions == 0 || st.Defaulted == 0 || st.Matched != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPolicyFirstMatchWins(t *testing.T) {
	p := NewPolicy()
	p.Use(
		BySchema("design-doc", "gmd", "upc"),
		ByField("context", "act-1", "nott"),
	)
	if !p.Selective() {
		t.Fatal("rule-bearing policy not selective")
	}

	// Schema rule claims the object even though the field rule would too.
	d := Descriptor{Schema: "design-doc", Fields: map[string]string{"context": "act-1"}}
	pl := p.SitesFor(d)
	if pl.Rule != "schema:design-doc" || pl.Everywhere {
		t.Fatalf("placement = %+v", pl)
	}
	if !pl.At("gmd") || !pl.At("upc") || pl.At("nott") {
		t.Fatalf("sites = %v", pl.Sites)
	}

	// Field rule catches what the schema rule does not.
	d2 := Descriptor{Schema: "note", Fields: map[string]string{"context": "act-1"}}
	if pl2 := p.SitesFor(d2); pl2.Rule != "context:act-1" || !pl2.At("nott") || pl2.At("gmd") {
		t.Fatalf("placement2 = %+v", pl2)
	}

	// Unmatched objects fall to everywhere.
	if pl3 := p.SitesFor(Descriptor{Schema: "memo"}); !pl3.Everywhere {
		t.Fatalf("placement3 = %+v", pl3)
	}
}

func TestByActivityTracksMembershipDynamically(t *testing.T) {
	members := []string{"upc"}
	p := NewPolicy()
	p.Use(ByActivity("act-7", "context", func(id string) []string {
		if id != "act-7" {
			t.Fatalf("lookup for %q", id)
		}
		return members
	}))
	d := Descriptor{Schema: "note", Fields: map[string]string{"context": "act-7"}}
	if !p.PlacedAt("upc", d) || p.PlacedAt("gmd", d) {
		t.Fatal("initial membership wrong")
	}
	members = []string{"gmd", "upc"} // a member joins from gmd: no rule change
	if !p.PlacedAt("gmd", d) {
		t.Fatal("membership change not reflected")
	}
}

func TestPolicyVersioningAndSubscription(t *testing.T) {
	p := NewPolicy()
	fired := 0
	p.Subscribe(func() { fired++ })
	if p.Version() != 0 {
		t.Fatalf("version = %d", p.Version())
	}
	p.Use(BySchema("doc", "gmd"))
	p.Add(ByOrgUnit("gmd", "org", func(string) []string { return []string{"gmd"} }))
	if p.Version() != 2 || fired != 2 {
		t.Fatalf("version=%d fired=%d", p.Version(), fired)
	}
	if got := p.Rules(); len(got) != 2 || got[0] != "schema:doc" || got[1] != "org:gmd" {
		t.Fatalf("rules = %v", got)
	}
	asg := p.Assignments()
	if len(asg) != 2 || asg[0].Space != "schema:doc" || asg[1].Space != "org:gmd" {
		t.Fatalf("assignments = %+v", asg)
	}
}

// testSpace builds a one-site space with one shared object, returning the
// space and the object.
func testSpace(t *testing.T, clk vclock.Clock, site string) (*information.Space, *information.Object) {
	t.Helper()
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "note", Fields: []information.Field{
		{Name: "headline", Type: information.FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	sp := information.NewSpace(registry, nil, clk, information.WithSite(site))
	obj, err := sp.Put("ada", "note", map[string]string{"headline": "hello"})
	if err != nil {
		t.Fatal(err)
	}
	return sp, obj
}

// TestReaderResolvesHolderThroughTrader runs a real read: a holder site
// serves MethodRead, the trader carries its offer, and a reader on
// another node resolves and reads through it.
func TestReaderResolvesHolderThroughTrader(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	holderEP := rpc.NewEndpoint(net.MustAddNode("place-gmd"), clk)
	readerEP := rpc.NewEndpoint(net.MustAddNode("place-upc"), clk)

	space, obj := testSpace(t, clk, "gmd")
	srv := NewReadServer(holderEP, "gmd", func() *information.Space { return space })

	tr := trader.New()
	if err := tr.RegisterType(ServiceType); err != nil {
		t.Fatal(err)
	}
	for _, o := range []trader.Offer{
		{ID: OfferID("gmd", "schema:note"), ServiceType: ServiceType, Provider: "place-gmd",
			Properties: map[string][]string{SpaceProp: {"schema:note"}, SiteProp: {"gmd"}}},
		{ID: OfferID("upc", DefaultSpace), ServiceType: ServiceType, Provider: "place-upc",
			Properties: map[string][]string{SpaceProp: {DefaultSpace}, SiteProp: {"upc"}}},
	} {
		if err := tr.Export(o); err != nil {
			t.Fatal(err)
		}
	}

	reader := NewReader(readerEP, tr, "upc")
	type result struct {
		obj  *information.Object
		site string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		o, s, err := reader.Read("ada", obj.ID)
		done <- result{o, s, err}
	}()
	var res result
	for {
		select {
		case res = <-done:
		default:
			clk.Advance(10 * time.Millisecond)
			time.Sleep(50 * time.Microsecond)
			continue
		}
		break
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.site != "gmd" || res.obj.Fields["headline"] != "hello" || res.obj.ID != obj.ID {
		t.Fatalf("read = %+v from %s", res.obj, res.site)
	}
	if s := srv.Stats(); s.Served != 1 {
		t.Fatalf("server stats = %+v", s)
	}
	if s := reader.Stats(); s.Reads != 1 || s.Served != 1 {
		t.Fatalf("reader stats = %+v", s)
	}
}

// TestReaderNoHolder: every provider is down (or self) — the error wraps
// ErrNoHolder with the failure detail.
func TestReaderNoHolder(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	readerEP := rpc.NewEndpoint(net.MustAddNode("place-upc"), clk)
	holder := net.MustAddNode("place-gmd") // node exists but serves nothing; take it down
	holder.SetDown(true)

	tr := trader.New()
	if err := tr.RegisterType(ServiceType); err != nil {
		t.Fatal(err)
	}
	if err := tr.Export(trader.Offer{
		ID: OfferID("gmd", "schema:note"), ServiceType: ServiceType, Provider: "place-gmd",
		Properties: map[string][]string{SpaceProp: {"schema:note"}, SiteProp: {"gmd"}},
	}); err != nil {
		t.Fatal(err)
	}

	reader := NewReader(readerEP, tr, "upc", WithReadTimeout(50*time.Millisecond))
	errCh := make(chan error, 1)
	go func() {
		_, _, err := reader.Read("ada", "info-unknown")
		errCh <- err
	}()
	var err error
	for {
		select {
		case err = <-errCh:
		default:
			clk.Advance(10 * time.Millisecond)
			time.Sleep(50 * time.Microsecond)
			continue
		}
		break
	}
	if !errors.Is(err, ErrNoHolder) {
		t.Fatalf("err = %v, want ErrNoHolder", err)
	}
	if s := reader.Stats(); s.NoHolder != 1 || s.Attempts != 1 {
		t.Fatalf("reader stats = %+v", s)
	}
}
