// Package placement decides WHERE information objects live: the policy
// engine that maps each object to the set of sites whose replicas must
// hold it. The paper's position is that ODP's distribution transparencies
// only pay off in CSCW when replication is selective — a site should hold
// the information spaces of the activities it participates in, not a copy
// of the world — and placement is the enterprise-viewpoint knowledge
// ("who participates in what") that makes the information viewpoint's
// replication selective.
//
// A Policy is an ordered list of composable rules. Each rule governs one
// named space — a scope of the information space such as a schema
// ("schema:design-doc"), an activity ("activity:act-1") or an org unit
// ("org:gmd") — and pairs a membership predicate over object descriptors
// with the (possibly dynamic) site set that space is placed at. The first
// matching rule decides; an object no rule matches falls to the
// deterministic default of replicate-everywhere, so a deployment with no
// rules behaves exactly like full replication.
//
// Consumers:
//
//   - internal/replica filters digest deltas, pushes and applies by the
//     peer's interest set, so a site only receives rows of spaces it is
//     placed in;
//   - the trader carries one service offer per (site, hosted space) under
//     ServiceType, which is how a non-placed site resolves a holder for a
//     trader-mediated remote read (see server.go);
//   - internal/core consults the policy on reads and surfaces remote
//     serving via location transparency.
package placement

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mocca/internal/information"
)

// DefaultSpace names the implicit space of objects no rule matches; it is
// hosted by every site.
const DefaultSpace = "*"

// Descriptor is the view of an object a placement rule decides over. It
// deliberately carries no engineering state (version vectors, timestamps):
// placement is a function of what the object IS, not of its history, so
// every replica evaluating the same policy reaches the same decision.
type Descriptor struct {
	ID     string
	Schema string
	Owner  string
	Fields map[string]string
}

// Describe builds the descriptor for an information object.
func Describe(o *information.Object) Descriptor {
	return Descriptor{ID: o.ID, Schema: o.Schema, Owner: o.Owner, Fields: o.Fields}
}

// Rule is one composable placement rule: a predicate selecting the
// objects of its space, plus the site set that space is placed at.
type Rule interface {
	// Name identifies the rule in diagnostics and Placement results.
	Name() string
	// Space names the scope of the information space the rule governs,
	// e.g. "schema:design-doc" or "activity:act-7".
	Space() string
	// Match reports whether the descriptor belongs to the rule's space.
	Match(d Descriptor) bool
	// Sites returns the sites the space is currently placed at, sorted.
	// Empty means everywhere. Implementations may compute this dynamically
	// (activity membership changes move the space without a rule change).
	Sites() []string
}

// funcRule adapts plain functions to Rule.
type funcRule struct {
	name  string
	space string
	match func(Descriptor) bool
	sites func() []string
}

func (r funcRule) Name() string  { return r.name }
func (r funcRule) Space() string { return r.space }

func (r funcRule) Match(d Descriptor) bool { return r.match(d) }

func (r funcRule) Sites() []string {
	if r.sites == nil {
		return nil
	}
	out := append([]string(nil), r.sites()...)
	sort.Strings(out)
	return out
}

// NewRule builds a rule from functions. A nil sites function means the
// space is placed everywhere (the rule then only names a space).
func NewRule(name, space string, match func(Descriptor) bool, sites func() []string) Rule {
	return funcRule{name: name, space: space, match: match, sites: sites}
}

// staticSites freezes a site list for the rule constructors below.
func staticSites(sites []string) func() []string {
	frozen := append([]string(nil), sites...)
	return func() []string { return frozen }
}

// BySchema places every object of the named schema at the given sites —
// the information-viewpoint cut ("this document type lives at these
// archives"). No sites means everywhere.
func BySchema(schema string, sites ...string) Rule {
	space := "schema:" + strings.ToLower(schema)
	return funcRule{
		name:  space,
		space: space,
		match: func(d Descriptor) bool { return strings.EqualFold(d.Schema, schema) },
		sites: staticSites(sites),
	}
}

// ByField places objects whose field carries the given value at the given
// sites — the generic enterprise cut (e.g. field "org", value "gmd"). No
// sites means everywhere.
func ByField(field, value string, sites ...string) Rule {
	space := field + ":" + value
	return funcRule{
		name:  space,
		space: space,
		match: func(d Descriptor) bool { return d.Fields[field] == value },
		sites: staticSites(sites),
	}
}

// ByActivity places the information space of one activity at the sites of
// its members: an object belongs to the space when its field names the
// activity id, and the site set is looked up per decision, so membership
// changes move the space without touching the policy.
func ByActivity(activityID, field string, memberSites func(activityID string) []string) Rule {
	space := "activity:" + activityID
	return funcRule{
		name:  space,
		space: space,
		match: func(d Descriptor) bool { return d.Fields[field] == activityID },
		sites: func() []string { return memberSites(activityID) },
	}
}

// ByOrgUnit places an org unit's space at the sites the lookup names —
// the paper's organisational knowledge base dictating distribution, like
// it dictates the trading policy.
func ByOrgUnit(unit, field string, unitSites func(unit string) []string) Rule {
	space := "org:" + unit
	return funcRule{
		name:  space,
		space: space,
		match: func(d Descriptor) bool { return d.Fields[field] == unit },
		sites: func() []string { return unitSites(unit) },
	}
}

// Placement is a policy decision: where one object lives.
type Placement struct {
	// Space is the space the object belongs to (DefaultSpace when no rule
	// matched).
	Space string
	// Rule names the deciding rule ("" for the default).
	Rule string
	// Everywhere reports full replication for this object.
	Everywhere bool
	// Sites is the replica set, sorted; nil when Everywhere.
	Sites []string
}

// At reports whether the object is placed at the site.
func (p Placement) At(site string) bool {
	if p.Everywhere {
		return true
	}
	for _, s := range p.Sites {
		if s == site {
			return true
		}
	}
	return false
}

// Assignment is one rule's current space→sites mapping, for offer export
// and introspection.
type Assignment struct {
	Space string
	Rule  string
	// Sites the space is placed at, sorted; nil means everywhere.
	Sites []string
}

// Stats counts policy activity.
type Stats struct {
	Decisions int64  // SitesFor / PlacedAt evaluations
	Matched   int64  // decisions a rule claimed
	Defaulted int64  // decisions that fell to replicate-everywhere
	Version   uint64 // bumped by every rule-set change
}

// Policy is the placement engine: an ordered rule list with change
// notification, shared by every site of a deployment so all replicas
// agree on where each object lives. Decisions run under a read lock
// with atomic counters — SitesFor/PlacedAt is the hottest read path in
// the system (called per object per peer per sync round by every
// replicator sharing the policy) and must not serialise on a writer
// lock.
type Policy struct {
	mu      sync.RWMutex
	rules   []Rule
	version uint64
	subs    []func()

	decisions atomic.Int64
	matched   atomic.Int64
	defaulted atomic.Int64
}

// NewPolicy creates a policy with no rules: everything replicates
// everywhere, which is exactly the pre-placement behaviour.
func NewPolicy() *Policy { return &Policy{} }

// Use replaces the rule set and notifies subscribers — the runtime
// placement-change entry point (subscribers re-export trader offers and
// migrate rows off de-placed sites).
func (p *Policy) Use(rules ...Rule) {
	p.mu.Lock()
	p.rules = append([]Rule(nil), rules...)
	p.version++
	subs := append([]func(){}, p.subs...)
	p.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// Add appends rules to the set and notifies subscribers.
func (p *Policy) Add(rules ...Rule) {
	p.mu.Lock()
	p.rules = append(p.rules, rules...)
	p.version++
	subs := append([]func(){}, p.subs...)
	p.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// Subscribe registers fn to run after every rule-set change. Callbacks
// run synchronously on the changing goroutine, outside the policy lock.
func (p *Policy) Subscribe(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.subs = append(p.subs, fn)
}

// Version returns the rule-set version (0 = never configured).
func (p *Policy) Version() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}

// Rules lists the installed rule names in evaluation order.
func (p *Policy) Rules() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, len(p.rules))
	for i, r := range p.rules {
		out[i] = r.Name()
	}
	return out
}

// Stats returns a snapshot of the counters.
func (p *Policy) Stats() Stats {
	p.mu.RLock()
	version := p.version
	p.mu.RUnlock()
	return Stats{
		Decisions: p.decisions.Load(),
		Matched:   p.matched.Load(),
		Defaulted: p.defaulted.Load(),
		Version:   version,
	}
}

// SitesFor decides where the object lives: the first matching rule's
// current site set, or replicate-everywhere when no rule matches.
func (p *Policy) SitesFor(d Descriptor) Placement {
	p.decisions.Add(1)
	p.mu.RLock()
	rules := p.rules
	p.mu.RUnlock()
	// Rules are immutable once installed (Use/Add replace the slice), so
	// matching runs outside any lock.
	var matched Rule
	for _, r := range rules {
		if r.Match(d) {
			matched = r
			break
		}
	}
	if matched == nil {
		p.defaulted.Add(1)
		return Placement{Space: DefaultSpace, Everywhere: true}
	}
	p.matched.Add(1)
	sites := matched.Sites()
	return Placement{
		Space:      matched.Space(),
		Rule:       matched.Name(),
		Everywhere: len(sites) == 0,
		Sites:      sites,
	}
}

// PlacedAt reports whether the object is placed at the site.
func (p *Policy) PlacedAt(site string, d Descriptor) bool {
	return p.SitesFor(d).At(site)
}

// Selective reports whether any rules are installed — false means the
// policy is the replicate-everywhere default and filtering is a no-op.
func (p *Policy) Selective() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules) > 0
}

// Assignments returns every rule's current space→sites mapping, in
// evaluation order — the unit the deployment exports trader offers from.
func (p *Policy) Assignments() []Assignment {
	p.mu.RLock()
	rules := append([]Rule(nil), p.rules...)
	p.mu.RUnlock()
	out := make([]Assignment, len(rules))
	for i, r := range rules {
		out[i] = Assignment{Space: r.Space(), Rule: r.Name(), Sites: r.Sites()}
	}
	return out
}
