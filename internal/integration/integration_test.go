// Package integration_test exercises cross-module scenarios end-to-end on
// the full simulated stack, including injected failures: partitions during
// store-and-forward delivery, conference-server recovery, and tailoring
// rules that span models.
package integration_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocca"
	"mocca/internal/activity"
	"mocca/internal/comm"
	"mocca/internal/directory"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/org"
	"mocca/internal/policy"
	"mocca/internal/rpc"
	"mocca/internal/transparency"
)

// TestFullStackScenario runs the paper's world: three organisations, a
// moderated conference, a digest to the absent member, an org-governed
// trader, and the directory export — all on one simulated deployment.
func TestFullStackScenario(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(1992))
	env := dep.Env()

	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	lancs := dep.AddSite("lancs", "lancs.uk")
	_ = gmd.AddUser("prinz")
	navarroUA := upc.AddUser("navarro")
	_ = lancs.AddUser("rodden")

	// Organisational model + policies.
	for _, o := range []org.Object{
		{ID: "gmd", Kind: org.KindOrg, Name: "GMD"},
		{ID: "upc", Kind: org.KindOrg, Name: "UPC"},
		{ID: "lancs", Kind: org.KindOrg, Name: "Lancaster"},
		{ID: "prinz", Kind: org.KindPerson, Name: "Prinz", Org: "gmd"},
		{ID: "navarro", Kind: org.KindPerson, Name: "Navarro", Org: "upc"},
	} {
		if err := env.Org().AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"gmd", "upc", "lancs"} {
		env.Org().SetPolicy(id, "data-sharing", "open")
	}
	if err := env.SyncOrgToDirectory(); err != nil {
		t.Fatal(err)
	}

	// Synchronous meeting with one absent member.
	cid, err := dep.Conferencing().CreateConference("editorial", mocca.ConferenceModerated)
	if err != nil {
		t.Fatal(err)
	}
	prinzSess, err := dep.JoinConference(cid, "prinz")
	if err != nil {
		t.Fatal(err)
	}
	roddenSess, err := dep.JoinConference(cid, "rodden")
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(dep.Do(func() error { _, err := prinzSess.RequestFloor(); return err }))
	must(dep.Do(func() error { return prinzSess.Set("decision", "submit to ICDCS") }))
	must(dep.Do(prinzSess.ReleaseFloor))
	must(dep.Do(prinzSess.Leave))
	must(dep.Do(roddenSess.Leave))
	dep.Run()

	// Temporal transparency: navarro gets the digest by mail.
	sent, err := comm.BridgeConference(env.Hub(), dep.Conferencing(), cid,
		[]string{"prinz", "rodden", "navarro"}, "meeting:editorial")
	must(err)
	if sent != 1 {
		t.Fatalf("digests = %d", sent)
	}
	dep.Run()
	msgs, err := navarroUA.List()
	must(err)
	if len(msgs) != 1 || !strings.Contains(msgs[0].Envelope.Content.Body, "submit to ICDCS") {
		t.Fatalf("navarro digest = %+v", msgs)
	}

	// The directory has the org view.
	found, err := env.Directory().Search(directory.SearchRequest{
		Base:   directory.DN{},
		Scope:  directory.ScopeSubtree,
		Filter: directory.MustParseFilter("(objectclass=person)"),
	})
	must(err)
	if len(found) != 2 {
		t.Fatalf("directory persons = %d", len(found))
	}
}

// TestPartitionDuringBridgeHealsAndDelivers injects a partition between
// sites while the MHS is relaying; retries deliver after heal.
func TestPartitionDuringBridgeHealsAndDelivers(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(4))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")

	// Cut the inter-site link, send, and confirm non-delivery while cut.
	dep.Network().Partition(
		[]netsim.Address{"mta-gmd", "mcu", "user-prinz"},
		[]netsim.Address{"mta-upc", "user-navarro"},
	)
	if _, err := prinz.Send([]mocca.ORName{navarro.Name}, "during partition", "x"); err != nil {
		t.Fatal(err)
	}
	dep.Advance(6 * time.Second) // first transfer attempt times out
	if navarro.Unread() != 0 {
		t.Fatal("delivered across partition")
	}
	// Heal before the retry schedule is exhausted.
	dep.Network().Heal()
	dep.Run()
	if navarro.Unread() != 1 {
		t.Fatalf("unread after heal = %d", navarro.Unread())
	}
}

// TestConferenceServerCrashAndResync kills the MCU node mid-conference;
// after recovery the partitioned member resyncs to the same state.
func TestConferenceServerCrashAndResync(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(5))
	cid, err := dep.Conferencing().CreateConference("resilient", mocca.ConferenceOpen)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dep.JoinConference(cid, "ada")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dep.JoinConference(cid, "ben")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Do(func() error { return a.Set("k", "before") }); err != nil {
		t.Fatal(err)
	}
	dep.Run()

	mcu, ok := dep.Network().Node("mcu")
	if !ok {
		t.Fatal("no mcu node")
	}
	mcu.SetDown(true)
	// Updates fail while the server is down.
	err = dep.Do(func() error { return a.Set("k", "during") })
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("update during crash: %v", err)
	}
	mcu.SetDown(false)
	// Server state survived (crash-recover with in-memory state in this
	// simulation); clients continue.
	if err := dep.Do(func() error { return a.Set("k", "after") }); err != nil {
		t.Fatal(err)
	}
	if err := dep.Do(b.Resync); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if b.Get("k") != "after" || a.Get("k") != "after" {
		t.Fatalf("replicas diverged: a=%q b=%q", a.Get("k"), b.Get("k"))
	}
}

// TestTailoringRuleSpansModels installs a user rule that reacts to an
// activity completing by counting through a registered action — the
// tailorability toolkit automating across models.
func TestTailoringRuleSpansModels(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(6))
	env := dep.Env()

	completed := 0
	env.Policies().RegisterAction("tally", func(ev policy.Event, args map[string]string) error {
		if ev.Attr("state") == activity.StateCompleted.String() {
			completed++
		}
		return nil
	}, true)
	if _, err := env.Policies().InstallRuleText(
		"rule tally-completions; on activity.transition; do tally", policy.LevelUser); err != nil {
		t.Fatal(err)
	}

	act, err := env.Activities().Create("ada", "write tests", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Activities().Transition("ada", act.ID, activity.StateActive); err != nil {
		t.Fatal(err)
	}
	if err := env.Activities().Transition("ada", act.ID, activity.StateCompleted); err != nil {
		t.Fatal(err)
	}
	if completed != 1 {
		t.Fatalf("tally = %d", completed)
	}
}

// TestTransparencyGovernsHubEndToEnd shows the sender-side transparency
// mask controlling whether offline delivery degrades or fails, through the
// real hub and MHS.
func TestTransparencyGovernsHubEndToEnd(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(7))
	gmd := dep.AddSite("gmd", "gmd.de")
	_ = gmd.AddUser("prinz")
	klaus := gmd.AddUser("klaus")

	// Default: time transparency on; offline recipient gets async.
	mode, err := dep.Env().Hub().Send(mocca.Message{From: "prinz", To: "klaus", Subject: "s1"})
	if err != nil || mode != transparency.ModeAsync {
		t.Fatalf("mode=%v err=%v", mode, err)
	}
	dep.Run()
	if klaus.Unread() != 1 {
		t.Fatalf("unread = %d", klaus.Unread())
	}

	// User deselects time transparency: the same send now surfaces the
	// mode mismatch instead of silently degrading.
	dep.Env().Transparency().Set("prinz", 0)
	if _, err := dep.Env().Hub().Send(mocca.Message{From: "prinz", To: "klaus", Subject: "s2"}); !errors.Is(err, transparency.ErrRecipientOffline) {
		t.Fatalf("err = %v", err)
	}
}

// TestInformationVersionsMonotonic drives a random-ish op sequence and
// asserts version monotonicity and access soundness.
func TestInformationVersionsMonotonic(t *testing.T) {
	dep := mocca.NewDeployment(mocca.WithSeed(8))
	space := dep.Env().Space()
	obj, err := space.Put("ada", mocca.SharedSchemaName, map[string]string{"title": "v"})
	if err != nil {
		t.Fatal(err)
	}
	last := obj.Version
	for i := 0; i < 50; i++ {
		got, err := space.Get("ada", obj.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version < last {
			t.Fatalf("version went backwards: %d < %d", got.Version, last)
		}
		updated, err := space.Update("ada", obj.ID, got.Version, map[string]string{"body": strings.Repeat("x", i%7)})
		if err != nil {
			if errors.Is(err, information.ErrSchemaViolation) {
				continue
			}
			t.Fatal(err)
		}
		if updated.Version != got.Version+1 {
			t.Fatalf("version skipped: %d -> %d", got.Version, updated.Version)
		}
		last = updated.Version
	}
	// Strangers still cannot read after all this activity.
	if _, err := space.Get("mallory", obj.ID); !errors.Is(err, information.ErrDenied) {
		t.Fatalf("mallory read: %v", err)
	}
}
