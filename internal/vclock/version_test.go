package vclock

import "testing"

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		name string
		a, b Version
		want Ordering
	}{
		{"both empty", nil, nil, Equal},
		{"equal", Version{"a": 1, "b": 2}, Version{"a": 1, "b": 2}, Equal},
		{"after", Version{"a": 2}, Version{"a": 1}, After},
		{"after with extra site", Version{"a": 1, "b": 1}, Version{"a": 1}, After},
		{"before", Version{"a": 1}, Version{"a": 3}, Before},
		{"before vs extra site", Version{"a": 1}, Version{"a": 1, "c": 1}, Before},
		{"concurrent", Version{"a": 2, "b": 1}, Version{"a": 1, "b": 2}, Concurrent},
		{"concurrent disjoint", Version{"a": 1}, Version{"b": 1}, Concurrent},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%s: Compare(%v,%v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestVersionTickMergeSum(t *testing.T) {
	var v Version
	v = v.Tick("gmd")
	v = v.Tick("gmd")
	if v.Counter("gmd") != 2 || v.Sum() != 2 {
		t.Fatalf("after two ticks: %v (sum %d)", v, v.Sum())
	}
	o := NewVersion("upc")
	m := v.Merge(o)
	if m.Counter("gmd") != 2 || m.Counter("upc") != 1 || m.Sum() != 3 {
		t.Fatalf("merge = %v", m)
	}
	if !m.Dominates(v) || !m.Dominates(o) {
		t.Fatal("merge must dominate both inputs")
	}
	if m.Compare(v) != After || v.Compare(m) != Before {
		t.Fatal("merge ordering wrong")
	}
	// Merge is a pure function of its inputs.
	if v.Sum() != 2 || o.Sum() != 1 {
		t.Fatal("merge mutated an input")
	}
	// Sum is merge-invariant under convergence: merging in either order
	// yields the same total.
	if o.Merge(v).Sum() != m.Sum() {
		t.Fatal("sum not merge-invariant")
	}
}

func TestVersionCloneAndString(t *testing.T) {
	v := Version{"b": 2, "a": 1}
	c := v.Clone()
	c.Tick("a")
	if v.Counter("a") != 1 {
		t.Fatal("clone aliases original")
	}
	if s := v.String(); s != "a:1 b:2" {
		t.Fatalf("String = %q", s)
	}
	if s := Version(nil).String(); s != "∅" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestVersionBinaryRoundTrip(t *testing.T) {
	cases := []Version{
		nil,
		{"gmd": 1},
		{"gmd": 3, "upc": 9, "nott": 1},
	}
	for _, v := range cases {
		data := v.AppendBinary([]byte("prefix"))
		got, rest, err := DecodeVersion(data[len("prefix"):])
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", v, len(rest))
		}
		if got.Compare(v) != Equal || len(got) != len(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestVersionBinaryIsCanonical(t *testing.T) {
	a := Version{"gmd": 2, "upc": 5}
	b := Version{"upc": 5, "gmd": 2}
	ab, bb := a.AppendBinary(nil), b.AppendBinary(nil)
	if string(ab) != string(bb) {
		t.Fatal("equal vectors encoded differently")
	}
}

func TestDecodeVersionMalformed(t *testing.T) {
	for _, data := range [][]byte{
		{},                             // no count
		{0, 1},                         // count 1, nothing else
		{0, 1, 0, 0, 0, 9},             // site length past end
		{0, 1, 0xFF, 0xFF, 0xFF, 0xFF}, // huge site length (overflows int32)
	} {
		if _, _, err := DecodeVersion(data); err == nil {
			t.Fatalf("accepted malformed %v", data)
		}
	}
}
