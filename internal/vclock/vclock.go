// Package vclock provides the virtual time base used by the simulated
// distributed substrate. All components in this repository take a Clock so
// that tests and benchmarks run deterministically under a simulated clock,
// while examples may run against the real wall clock.
//
// The simulated clock is also a discrete-event scheduler: goroutines
// register timers, and Advance drains them in timestamp order. This is the
// standard deterministic-simulation design used by network simulators.
//
// The package also carries the information viewpoint's causality record
// (see ARCHITECTURE.md): Version is the per-site version vector kept on
// every replicated information object, with a canonical binary encoding
// (AppendBinary/DecodeVersion) so vectors round-trip byte-for-byte
// through the durable log and the sync wire.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for all simulated components.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once d has elapsed. The returned Timer
	// can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Timer is a cancellable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was prevented
	// from firing.
	Stop() bool
}

// Real returns a Clock backed by the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

//lint:allow determinism realClock is the designated wall-clock implementation every other package must route through
func (realClock) Now() time.Time { return time.Now() }

//lint:allow determinism realClock is the designated wall-clock implementation every other package must route through
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

//lint:allow determinism realClock is the designated wall-clock implementation every other package must route through
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	//lint:allow determinism realClock is the designated wall-clock implementation every other package must route through
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Simulated is a deterministic discrete-event clock. Time only moves when
// Advance or Run is called, and pending events fire in (time, sequence)
// order, so a simulation that schedules the same events always produces the
// same interleaving.
type Simulated struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	events eventQueue
}

// NewSimulated returns a simulated clock starting at the given epoch.
func NewSimulated(epoch time.Time) *Simulated {
	return &Simulated{now: epoch}
}

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.AfterFunc(d, func() {
		// Buffered: the send never blocks event processing.
		ch <- s.Now()
	})
	return ch
}

// Sleep implements Clock. Under a simulated clock Sleep parks the calling
// goroutine until some other goroutine advances time past the deadline.
func (s *Simulated) Sleep(d time.Duration) {
	<-s.After(d)
}

// AfterFunc implements Clock.
func (s *Simulated) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{
		at:  s.now.Add(d),
		seq: s.seq,
		fn:  f,
	}
	s.seq++
	heap.Push(&s.events, ev)
	return &simTimer{clock: s, ev: ev}
}

// Pending reports the number of scheduled events that have not yet fired.
func (s *Simulated) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// NextDeadline returns the timestamp of the earliest pending event and
// whether one exists.
func (s *Simulated) NextDeadline() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range s.events {
		if !ev.cancelled {
			// The heap root is the earliest, but cancelled events may sit
			// anywhere; scan is fine because queues stay small in tests.
			earliest := ev.at
			for _, other := range s.events {
				if !other.cancelled && other.at.Before(earliest) {
					earliest = other.at
				}
			}
			return earliest, true
		}
	}
	return time.Time{}, false
}

// Advance moves the clock forward by d, firing every event whose deadline
// falls within the window, in order. Callbacks run on the calling
// goroutine; callbacks may schedule further events, which also fire if they
// fall within the window.
func (s *Simulated) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves the clock to the given instant (it never moves backwards)
// firing due events in order.
func (s *Simulated) AdvanceTo(target time.Time) {
	for {
		s.mu.Lock()
		ev := s.popDueLocked(target)
		if ev == nil {
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return
		}
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.mu.Unlock()
		ev.fn()
	}
}

// RunUntilIdle fires all pending events regardless of timestamp, advancing
// the clock as needed, until no events remain. It returns the number of
// events fired. Use it to drain a simulation to quiescence.
func (s *Simulated) RunUntilIdle() int {
	fired := 0
	for {
		s.mu.Lock()
		ev := s.popDueLocked(maxTime)
		if ev == nil {
			s.mu.Unlock()
			return fired
		}
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.mu.Unlock()
		ev.fn()
		fired++
	}
}

var maxTime = time.Unix(1<<62-1, 0)

// popDueLocked removes and returns the earliest non-cancelled event with
// at <= target, or nil.
func (s *Simulated) popDueLocked(target time.Time) *event {
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if ev.at.After(target) {
			return nil
		}
		heap.Pop(&s.events)
		return ev
	}
	return nil
}

type simTimer struct {
	clock *Simulated
	ev    *event
}

func (t *simTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

var (
	_ Clock = realClock{}
	_ Clock = (*Simulated)(nil)
)
