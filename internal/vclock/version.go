package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Version is a per-site version vector: one write counter per site that
// has ever modified the associated state. It is the causality record the
// replicated information model keeps per object — two versions compare as
// ordered when one site has seen everything the other wrote, and as
// concurrent when each side holds writes the other has not seen.
//
// The zero value (nil) is a valid empty vector.
type Version map[string]uint64

// Ordering is the outcome of comparing two version vectors.
type Ordering int

// The four possible causal relations between two version vectors.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// NewVersion builds a vector with a single write by site.
func NewVersion(site string) Version { return Version{site: 1} }

// Tick records one more write by site, returning the vector (allocated if
// nil).
func (v Version) Tick(site string) Version {
	if v == nil {
		return Version{site: 1}
	}
	v[site]++
	return v
}

// Counter returns site's write counter (0 if the site never wrote).
func (v Version) Counter(site string) uint64 { return v[site] }

// Sum returns the total number of writes the vector records. Because
// every write anywhere ticks exactly one counter, Sum is merge-invariant:
// converged replicas agree on it, which makes it usable as a replica-local
// optimistic-concurrency version number.
func (v Version) Sum() uint64 {
	var n uint64
	for _, c := range v {
		n += c
	}
	return n
}

// Clone deep-copies the vector.
func (v Version) Clone() Version {
	if v == nil {
		return nil
	}
	out := make(Version, len(v))
	for s, c := range v {
		out[s] = c
	}
	return out
}

// Merge returns a new vector holding the element-wise maximum of v and o —
// the causal history that has seen both sides' writes.
func (v Version) Merge(o Version) Version {
	out := make(Version, len(v)+len(o))
	for s, c := range v {
		out[s] = c
	}
	for s, c := range o {
		if c > out[s] {
			out[s] = c
		}
	}
	return out
}

// Compare reports the causal relation of v to o: After means v has seen
// strictly more, Before strictly less, Concurrent that each side holds
// writes the other lacks.
func (v Version) Compare(o Version) Ordering {
	var less, more bool
	for s, c := range v {
		switch oc := o[s]; {
		case c > oc:
			more = true
		case c < oc:
			less = true
		}
	}
	for s, oc := range o {
		if oc > v[s] {
			less = true
		}
	}
	switch {
	case more && less:
		return Concurrent
	case more:
		return After
	case less:
		return Before
	default:
		return Equal
	}
}

// Dominates reports whether v has seen every write o has (v >= o
// element-wise) — i.e. Compare is After or Equal.
func (v Version) Dominates(o Version) bool {
	c := v.Compare(o)
	return c == After || c == Equal
}

// String renders the vector as "site:counter" pairs sorted by site, e.g.
// "gmd:2 upc:1"; the empty vector renders as "∅".
func (v Version) String() string {
	if len(v) == 0 {
		return "∅"
	}
	sites := make([]string, 0, len(v))
	for s := range v {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = fmt.Sprintf("%s:%d", s, v[s])
	}
	return strings.Join(parts, " ")
}
