package vclock

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mocca/internal/wire"
)

// Version is a per-site version vector: one write counter per site that
// has ever modified the associated state. It is the causality record the
// replicated information model keeps per object — two versions compare as
// ordered when one site has seen everything the other wrote, and as
// concurrent when each side holds writes the other has not seen.
//
// The zero value (nil) is a valid empty vector.
type Version map[string]uint64

// Ordering is the outcome of comparing two version vectors.
type Ordering int

// The four possible causal relations between two version vectors.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// NewVersion builds a vector with a single write by site.
func NewVersion(site string) Version { return Version{site: 1} }

// Tick records one more write by site, returning the vector (allocated if
// nil).
func (v Version) Tick(site string) Version {
	if v == nil {
		return Version{site: 1}
	}
	v[site]++
	return v
}

// Counter returns site's write counter (0 if the site never wrote).
func (v Version) Counter(site string) uint64 { return v[site] }

// Sum returns the total number of writes the vector records. Because
// every write anywhere ticks exactly one counter, Sum is merge-invariant:
// converged replicas agree on it, which makes it usable as a replica-local
// optimistic-concurrency version number.
func (v Version) Sum() uint64 {
	var n uint64
	for _, c := range v {
		n += c
	}
	return n
}

// Clone deep-copies the vector.
func (v Version) Clone() Version {
	if v == nil {
		return nil
	}
	out := make(Version, len(v))
	for s, c := range v {
		out[s] = c
	}
	return out
}

// Merge returns a new vector holding the element-wise maximum of v and o —
// the causal history that has seen both sides' writes.
func (v Version) Merge(o Version) Version {
	out := make(Version, len(v)+len(o))
	for s, c := range v {
		out[s] = c
	}
	for s, c := range o {
		if c > out[s] {
			out[s] = c
		}
	}
	return out
}

// Compare reports the causal relation of v to o: After means v has seen
// strictly more, Before strictly less, Concurrent that each side holds
// writes the other lacks.
func (v Version) Compare(o Version) Ordering {
	var less, more bool
	for s, c := range v {
		switch oc := o[s]; {
		case c > oc:
			more = true
		case c < oc:
			less = true
		}
	}
	for s, oc := range o {
		if oc > v[s] {
			less = true
		}
	}
	switch {
	case more && less:
		return Concurrent
	case more:
		return After
	case less:
		return Before
	default:
		return Equal
	}
}

// Dominates reports whether v has seen every write o has (v >= o
// element-wise) — i.e. Compare is After or Equal.
func (v Version) Dominates(o Version) bool {
	c := v.Compare(o)
	return c == After || c == Equal
}

// ErrBadVersion reports a malformed binary version encoding.
var ErrBadVersion = errors.New("vclock: bad version encoding")

// AppendBinary appends a deterministic binary encoding of the vector to
// dst: a uint64 entry count, then per site in sorted order a
// length-prefixed site name and a uint64 counter, all in wire's shared
// codec layout. Sorted order makes the encoding canonical — equal
// vectors encode to equal bytes — which is what lets durable-store
// recovery be verified byte-for-byte.
func (v Version) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint64(dst, uint64(len(v)))
	sites := make([]string, 0, len(v))
	for s := range v {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		dst = wire.AppendString(dst, s)
		dst = wire.AppendUint64(dst, v[s])
	}
	return dst
}

// DecodeVersion decodes a vector produced by AppendBinary from data,
// returning it (nil for the empty vector) and the remaining bytes.
func DecodeVersion(data []byte) (Version, []byte, error) {
	n, data, err := wire.ConsumeUint64(data)
	if err != nil {
		return nil, data, fmt.Errorf("%w: %v", ErrBadVersion, err)
	}
	if n == 0 {
		return nil, data, nil
	}
	// Each entry takes at least 12 bytes (length prefix + counter); a
	// count past that bound is corruption, caught before allocating.
	if n > uint64(len(data))/12 {
		return nil, data, ErrBadVersion
	}
	v := make(Version, n)
	for i := uint64(0); i < n; i++ {
		var site string
		if site, data, err = wire.ConsumeString(data); err != nil {
			return nil, data, fmt.Errorf("%w: %v", ErrBadVersion, err)
		}
		var c uint64
		if c, data, err = wire.ConsumeUint64(data); err != nil {
			return nil, data, fmt.Errorf("%w: %v", ErrBadVersion, err)
		}
		v[site] = c
	}
	return v, data, nil
}

// String renders the vector as "site:counter" pairs sorted by site, e.g.
// "gmd:2 upc:1"; the empty vector renders as "∅".
func (v Version) String() string {
	if len(v) == 0 {
		return "∅"
	}
	sites := make([]string, 0, len(v))
	for s := range v {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = fmt.Sprintf("%s:%d", s, v[s])
	}
	return strings.Join(parts, " ")
}
