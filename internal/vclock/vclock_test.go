package vclock

import (
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(1992, time.June, 9, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now() after Advance = %v, want %v", got, epoch.Add(3*time.Second))
	}
}

func TestAfterFuncFiresInOrder(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Second)
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterFuncSameDeadlineFIFO(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline events fired out of registration order: %v", order)
		}
	}
}

func TestAdvancePartial(t *testing.T) {
	c := NewSimulated(epoch)
	var fired atomic.Int32
	c.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	c.AfterFunc(50*time.Millisecond, func() { fired.Add(1) })
	c.Advance(20 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Fatalf("fired = %d after partial advance, want 1", got)
	}
	c.Advance(40 * time.Millisecond)
	if got := fired.Load(); got != 2 {
		t.Fatalf("fired = %d after full advance, want 2", got)
	}
}

func TestTimerStop(t *testing.T) {
	c := NewSimulated(epoch)
	var fired atomic.Int32
	tm := c.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(time.Second)
	if got := fired.Load(); got != 0 {
		t.Fatalf("stopped timer fired %d times", got)
	}
}

func TestCascadedEventsWithinWindow(t *testing.T) {
	c := NewSimulated(epoch)
	var order []string
	c.AfterFunc(10*time.Millisecond, func() {
		order = append(order, "outer")
		c.AfterFunc(5*time.Millisecond, func() { order = append(order, "inner") })
	})
	c.Advance(20 * time.Millisecond)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("cascaded order = %v, want [outer inner]", order)
	}
	if got := c.Now(); !got.Equal(epoch.Add(20 * time.Millisecond)) {
		t.Fatalf("clock = %v, want %v", got, epoch.Add(20*time.Millisecond))
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewSimulated(epoch)
	depth := 0
	var schedule func()
	schedule = func() {
		if depth < 10 {
			depth++
			c.AfterFunc(time.Hour, schedule)
		}
	}
	schedule()
	fired := c.RunUntilIdle()
	if fired != 10 {
		t.Fatalf("RunUntilIdle fired %d, want 10", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after RunUntilIdle, want 0", c.Pending())
	}
}

func TestAfterChannelDelivers(t *testing.T) {
	c := NewSimulated(epoch)
	ch := c.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After channel delivered before Advance")
	default:
	}
	c.Advance(time.Minute)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(time.Minute)) {
			t.Fatalf("delivered time = %v, want %v", at, epoch.Add(time.Minute))
		}
	default:
		t.Fatal("After channel empty after Advance")
	}
}

func TestNegativeDelayFiresImmediately(t *testing.T) {
	c := NewSimulated(epoch)
	var fired bool
	c.AfterFunc(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay event did not fire at Advance(0)")
	}
}

func TestNextDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline ok on empty clock")
	}
	c.AfterFunc(5*time.Second, func() {})
	tm := c.AfterFunc(time.Second, func() {})
	at, ok := c.NextDeadline()
	if !ok || !at.Equal(epoch.Add(time.Second)) {
		t.Fatalf("NextDeadline = %v,%v want %v,true", at, ok, epoch.Add(time.Second))
	}
	tm.Stop()
	at, ok = c.NextDeadline()
	if !ok || !at.Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("NextDeadline after Stop = %v,%v want %v,true", at, ok, epoch.Add(5*time.Second))
	}
}

func TestRealClockSmoke(t *testing.T) {
	c := Real()
	before := time.Now()
	if c.Now().Before(before.Add(-time.Second)) {
		t.Fatal("real clock far in the past")
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop on real timer = false")
	}
	if fired.Load() {
		t.Fatal("real timer fired despite Stop")
	}
}
