// Package netsim simulates the wide-area network that a 1992-era open CSCW
// deployment would span: multiple sites joined by links of differing
// latency, jitter, loss and bandwidth, with node crashes and network
// partitions injectable at any point.
//
// The simulator is deterministic when driven by a vclock.Simulated clock and
// a fixed seed: message delivery is scheduled as discrete events, loss and
// jitter come from a seeded PRNG, and same-instant deliveries fire in
// registration order. All higher substrates (rpc, mhs, rtc) run on top of
// this package, so every distributed behaviour in the repository is
// reproducible on a single machine.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mocca/internal/vclock"
)

// Address names a node on the simulated network.
type Address string

// Message is a datagram exchanged between nodes.
type Message struct {
	From    Address
	To      Address
	Kind    string // application-level discriminator, e.g. "rpc.request"
	Payload []byte
	// Size overrides len(Payload) for bandwidth accounting when non-zero,
	// letting callers model large bodies without allocating them.
	Size int
}

// size returns the bandwidth-relevant size of the message in bytes.
func (m Message) size() int {
	if m.Size > 0 {
		return m.Size
	}
	if len(m.Payload) > 0 {
		return len(m.Payload)
	}
	return 64 // envelope floor: headers are never free
}

// Handler consumes a delivered message.
type Handler func(Message)

// LinkProfile describes the transmission characteristics of a directed link.
type LinkProfile struct {
	// Latency is the fixed propagation delay.
	Latency time.Duration
	// Jitter is the maximum additional random delay (uniform in [0,Jitter]).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a message is dropped.
	Loss float64
	// Bandwidth in bytes per second; zero means infinite.
	Bandwidth int
	// FIFO forces per-(src,dst) in-order delivery, as a transport
	// connection would.
	FIFO bool
}

// transitDelay computes the delay for a message of n bytes using the given
// random source.
func (p LinkProfile) transitDelay(n int, rng *rand.Rand) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.Jitter) + 1))
	}
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

// Stats aggregates network-wide counters.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // lost to link loss
	Blocked   int64 // rejected by partition or down node
	Bytes     int64 // bytes delivered
}

// Errors returned by Send.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrNodeDown    = errors.New("netsim: node is down")
	ErrNoHandler   = errors.New("netsim: destination has no handler")
)

// Option configures a Network.
type Option func(*Network)

// WithClock sets the time base. Defaults to a simulated clock at a fixed
// epoch.
func WithClock(c vclock.Clock) Option {
	return func(n *Network) { n.clock = c }
}

// WithSeed sets the PRNG seed for loss and jitter decisions.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultLink sets the profile used for node pairs without an explicit
// link.
func WithDefaultLink(p LinkProfile) Option {
	return func(n *Network) { n.defaultLink = p }
}

// DefaultEpoch is the simulated start instant: the week of ICDCS 1992.
var DefaultEpoch = time.Date(1992, time.June, 9, 9, 0, 0, 0, time.UTC)

// Network is the simulated internetwork. Create with New.
type Network struct {
	clock        vclock.Clock
	mu           sync.Mutex
	rng          *rand.Rand
	nodes        map[Address]*Node
	links        map[linkKey]LinkProfile
	defaultLink  LinkProfile
	partition    map[Address]int // group id per address; absent = group 0
	partitioned  bool
	lastFIFO     map[linkKey]time.Time
	healHooks    []func()
	recoverHooks []func(Address)
	stats        Stats
}

type linkKey struct{ from, to Address }

// New creates a network. With no options it uses a simulated clock starting
// at DefaultEpoch, seed 1, and a 5ms ± 0ms lossless default link.
func New(opts ...Option) *Network {
	n := &Network{
		nodes:       make(map[Address]*Node),
		links:       make(map[linkKey]LinkProfile),
		lastFIFO:    make(map[linkKey]time.Time),
		partition:   make(map[Address]int),
		defaultLink: LinkProfile{Latency: 5 * time.Millisecond},
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.clock == nil {
		n.clock = vclock.NewSimulated(DefaultEpoch)
	}
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	return n
}

// Clock returns the network's time base.
func (n *Network) Clock() vclock.Clock { return n.clock }

// AddNode registers a node with the given address.
func (n *Network) AddNode(addr Address) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("netsim: node %q already exists", addr)
	}
	nd := &Node{net: n, addr: addr, up: true}
	n.nodes[addr] = nd
	return nd, nil
}

// MustAddNode is AddNode panicking on error; for tests and examples.
func (n *Network) MustAddNode(addr Address) *Node {
	nd, err := n.AddNode(addr)
	if err != nil {
		panic(err)
	}
	return nd
}

// Node returns the node with the given address.
func (n *Network) Node(addr Address) (*Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[addr]
	return nd, ok
}

// Nodes returns all registered addresses (order unspecified).
func (n *Network) Nodes() []Address {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Address, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return out
}

// SetLink installs a symmetric link profile between a and b.
func (n *Network) SetLink(a, b Address, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
	n.links[linkKey{b, a}] = p
}

// SetDirectedLink installs an asymmetric link profile from a to b only.
func (n *Network) SetDirectedLink(a, b Address, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
}

// Partition splits the network into the given groups; traffic crosses group
// boundaries only by being blocked. Addresses not listed fall into an
// implicit extra group.
func (n *Network) Partition(groups ...[]Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[Address]int)
	for i, g := range groups {
		for _, a := range g {
			n.partition[a] = i + 1
		}
	}
	n.partitioned = true
}

// Heal removes any partition, prunes stale FIFO bookkeeping, and runs any
// OnHeal hooks (e.g. replication kicking an immediate sync round).
func (n *Network) Heal() {
	n.mu.Lock()
	n.partition = make(map[Address]int)
	n.partitioned = false
	n.pruneFIFOLocked()
	hooks := append([]func(){}, n.healHooks...)
	n.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// pruneFIFOLocked drops FIFO high-water marks that are already in the
// past: they can no longer order anything (any new send computes a later
// delivery), they only make the map grow without bound across long
// partition/crash scenarios. Marks still in the future guard in-flight
// messages and are kept, so FIFO ordering is never violated.
func (n *Network) pruneFIFOLocked() {
	now := n.clock.Now()
	for key, last := range n.lastFIFO {
		if !last.After(now) {
			delete(n.lastFIFO, key)
		}
	}
}

// OnHeal registers a hook invoked (outside the network lock) every time
// Heal is called.
func (n *Network) OnHeal(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.healHooks = append(n.healHooks, fn)
}

// OnRecover registers a hook invoked (outside the network lock) whenever
// a crashed node comes back up — the other moment, besides a heal, when
// dormant reconciliation work must restart.
func (n *Network) OnRecover(fn func(Address)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recoverHooks = append(n.recoverHooks, fn)
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// reachableLocked reports whether a partition separates from and to.
func (n *Network) reachableLocked(from, to Address) bool {
	if !n.partitioned {
		return true
	}
	return n.partition[from] == n.partition[to]
}

// send schedules delivery of msg from a node. Returns an error for
// conditions a sender would observe locally (unknown destination is NOT one
// of them in a real network, but surfacing it keeps tests honest).
func (n *Network) send(msg Message) error {
	n.mu.Lock()
	dst, ok := n.nodes[msg.To]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	src, ok := n.nodes[msg.From]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.From)
	}
	if !src.up {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeDown, msg.From)
	}
	n.stats.Sent++

	if !n.reachableLocked(msg.From, msg.To) {
		n.stats.Blocked++
		n.mu.Unlock()
		return nil // silently lost, as on a real partition
	}
	key := linkKey{msg.From, msg.To}
	profile, ok := n.links[key]
	if !ok {
		profile = n.defaultLink
	}
	if profile.Loss > 0 && n.rng.Float64() < profile.Loss {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	delay := profile.transitDelay(msg.size(), n.rng)
	deliverAt := n.clock.Now().Add(delay)
	if profile.FIFO {
		if last, ok := n.lastFIFO[key]; ok && deliverAt.Before(last) {
			deliverAt = last
		}
		n.lastFIFO[key] = deliverAt
	}
	n.mu.Unlock()

	n.clock.AfterFunc(deliverAt.Sub(n.clock.Now()), func() {
		n.deliver(dst, msg)
	})
	return nil
}

// deliver hands the message to the destination handler if the node is still
// up and reachable at delivery time (a partition raised mid-flight loses
// in-flight traffic, like a cut cable).
func (n *Network) deliver(dst *Node, msg Message) {
	n.mu.Lock()
	if !dst.up {
		n.stats.Blocked++
		n.mu.Unlock()
		return
	}
	if !n.reachableLocked(msg.From, msg.To) {
		n.stats.Blocked++
		n.mu.Unlock()
		return
	}
	h := dst.handler
	n.stats.Delivered++
	n.stats.Bytes += int64(msg.size())
	n.mu.Unlock()
	if h != nil {
		h(msg)
	}
}

// Node is an endpoint on the network.
type Node struct {
	net  *Network
	addr Address
	// guarded by net.mu
	up      bool
	handler Handler
}

// Addr returns the node's address.
func (nd *Node) Addr() Address { return nd.addr }

// Handle installs the inbound message handler. Handlers run on the clock's
// event goroutine; they must not block for long.
func (nd *Node) Handle(h Handler) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.handler = h
}

// Send transmits a message from this node. The From field is forced to the
// node's own address.
func (nd *Node) Send(msg Message) error {
	msg.From = nd.addr
	return nd.net.send(msg)
}

// SetDown marks the node crashed (true) or recovered (false). A down node
// neither sends nor receives; in-flight messages to it are lost. A crash
// also prunes stale FIFO ordering state, keeping the bookkeeping from
// growing without bound across long crash/recover scenarios; a recovery
// fires the network's OnRecover hooks.
func (nd *Node) SetDown(down bool) {
	nd.net.mu.Lock()
	recovered := !nd.up && !down
	nd.up = !down
	if down {
		nd.net.pruneFIFOLocked()
	}
	var hooks []func(Address)
	if recovered {
		hooks = append(hooks, nd.net.recoverHooks...)
	}
	nd.net.mu.Unlock()
	for _, fn := range hooks {
		fn(nd.addr)
	}
}

// Up reports whether the node is running.
func (nd *Node) Up() bool {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.up
}
