package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mocca/internal/vclock"
)

// TestQuickStatsConservation: after the network quiesces, every sent
// message is accounted for exactly once: delivered, dropped (loss), or
// blocked (partition/down node).
func TestQuickStatsConservation(t *testing.T) {
	f := func(seed int64, lossPct uint8, msgs uint8) bool {
		loss := float64(lossPct%90) / 100.0
		n := int(msgs%64) + 1
		clk := vclock.NewSimulated(DefaultEpoch)
		net := New(WithClock(clk), WithSeed(seed))
		a := net.MustAddNode("a")
		b := net.MustAddNode("b")
		net.SetLink("a", "b", LinkProfile{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Loss: loss})
		b.Handle(func(Message) {})
		for i := 0; i < n; i++ {
			if err := a.Send(Message{To: "b", Payload: []byte{byte(i)}}); err != nil {
				return false
			}
		}
		clk.RunUntilIdle()
		st := net.Stats()
		return st.Sent == int64(n) && st.Delivered+st.Dropped+st.Blocked == st.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConservationWithPartitionChurn keeps the invariant while
// partitions come and go mid-traffic.
func TestQuickConservationWithPartitionChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.NewSimulated(DefaultEpoch)
		net := New(WithClock(clk), WithSeed(seed))
		a := net.MustAddNode("a")
		b := net.MustAddNode("b")
		net.SetLink("a", "b", LinkProfile{Latency: 10 * time.Millisecond})
		b.Handle(func(Message) {})
		for i := 0; i < 30; i++ {
			_ = a.Send(Message{To: "b"})
			switch rng.Intn(4) {
			case 0:
				net.Partition([]Address{"a"}, []Address{"b"})
			case 1:
				net.Heal()
			case 2:
				clk.Advance(5 * time.Millisecond)
			}
		}
		net.Heal()
		clk.RunUntilIdle()
		st := net.Stats()
		return st.Delivered+st.Dropped+st.Blocked == st.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
