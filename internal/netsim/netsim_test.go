package netsim

import (
	"testing"
	"time"

	"mocca/internal/vclock"
)

func newTestNet(t *testing.T) (*Network, *vclock.Simulated) {
	t.Helper()
	clk := vclock.NewSimulated(DefaultEpoch)
	return New(WithClock(clk), WithSeed(42)), clk
}

func TestDeliveryBasic(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	var got []Message
	b.Handle(func(m Message) { got = append(got, m) })

	if err := a.Send(Message{To: "b", Kind: "ping", Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("message delivered before time advanced")
	}
	clk.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].From != "a" || got[0].Kind != "ping" || string(got[0].Payload) != "hello" {
		t.Fatalf("unexpected message %+v", got[0])
	}
}

func TestLatencyIsRespected(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetLink("a", "b", LinkProfile{Latency: 80 * time.Millisecond})

	var deliveredAt time.Time
	b.Handle(func(m Message) { deliveredAt = clk.Now() })
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(79 * time.Millisecond)
	if !deliveredAt.IsZero() {
		t.Fatal("delivered before latency elapsed")
	}
	clk.Advance(time.Millisecond)
	if deliveredAt.IsZero() {
		t.Fatal("not delivered at latency deadline")
	}
}

func TestBandwidthAddsSerializationDelay(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	// 1 KB/s: a 1000-byte message takes 1s on the wire plus zero latency.
	net.SetLink("a", "b", LinkProfile{Bandwidth: 1000})

	var delivered bool
	b.Handle(func(m Message) { delivered = true })
	if err := a.Send(Message{To: "b", Payload: make([]byte, 1000)}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(900 * time.Millisecond)
	if delivered {
		t.Fatal("delivered before serialization delay")
	}
	clk.Advance(200 * time.Millisecond)
	if !delivered {
		t.Fatal("not delivered after serialization delay")
	}
}

func TestLossDropsDeterministically(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetLink("a", "b", LinkProfile{Loss: 0.5})
	count := 0
	b.Handle(func(m Message) { count++ })
	const total = 1000
	for i := 0; i < total; i++ {
		if err := a.Send(Message{To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()
	if count == 0 || count == total {
		t.Fatalf("delivered %d of %d with 50%% loss; loss not applied", count, total)
	}
	// Roughly half, within generous bounds.
	if count < total/3 || count > 2*total/3 {
		t.Fatalf("delivered %d of %d, far from 50%%", count, total)
	}
	st := net.Stats()
	if st.Dropped+st.Delivered != total {
		t.Fatalf("dropped %d + delivered %d != sent %d", st.Dropped, st.Delivered, total)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	count := 0
	b.Handle(func(m Message) { count++ })

	net.Partition([]Address{"a"}, []Address{"b"})
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if count != 0 {
		t.Fatal("message crossed partition")
	}
	net.Heal()
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if count != 1 {
		t.Fatalf("delivered %d after heal, want 1", count)
	}
	if st := net.Stats(); st.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", st.Blocked)
	}
}

func TestPartitionRaisedMidFlightLosesTraffic(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetLink("a", "b", LinkProfile{Latency: 100 * time.Millisecond})
	count := 0
	b.Handle(func(m Message) { count++ })
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)
	net.Partition([]Address{"a"}, []Address{"b"})
	clk.RunUntilIdle()
	if count != 0 {
		t.Fatal("in-flight message survived partition")
	}
}

func TestDownNode(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	count := 0
	b.Handle(func(m Message) { count++ })

	b.SetDown(true)
	if b.Up() {
		t.Fatal("Up() = true after SetDown(true)")
	}
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if count != 0 {
		t.Fatal("down node received a message")
	}

	b.SetDown(false)
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if count != 1 {
		t.Fatalf("recovered node received %d, want 1", count)
	}

	a.SetDown(true)
	if err := a.Send(Message{To: "b"}); err == nil {
		t.Fatal("Send from down node succeeded, want error")
	}
}

func TestUnknownDestination(t *testing.T) {
	net, _ := newTestNet(t)
	a := net.MustAddNode("a")
	if err := a.Send(Message{To: "ghost"}); err == nil {
		t.Fatal("Send to unknown node succeeded")
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	net, _ := newTestNet(t)
	net.MustAddNode("a")
	if _, err := net.AddNode("a"); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
}

func TestFIFOOrdering(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	// Big jitter would reorder without FIFO.
	net.SetLink("a", "b", LinkProfile{Latency: time.Millisecond, Jitter: 50 * time.Millisecond, FIFO: true})
	var got []string
	b.Handle(func(m Message) { got = append(got, string(m.Payload)) })
	for _, s := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		if err := a.Send(Message{To: "b", Payload: []byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()
	if len(got) != 8 {
		t.Fatalf("delivered %d, want 8", len(got))
	}
	for i, s := range got {
		if want := string(rune('1' + i)); s != want {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

func TestJitterCanReorderWithoutFIFO(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetLink("a", "b", LinkProfile{Latency: time.Millisecond, Jitter: 50 * time.Millisecond})
	var got []string
	b.Handle(func(m Message) { got = append(got, string(m.Payload)) })
	for i := 0; i < 32; i++ {
		if err := a.Send(Message{To: "b", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("32 messages with 50ms jitter all arrived in order; jitter not applied")
	}
}

func TestAsymmetricLink(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetDirectedLink("a", "b", LinkProfile{Latency: 10 * time.Millisecond})
	net.SetDirectedLink("b", "a", LinkProfile{Latency: 200 * time.Millisecond})

	var atB, atA time.Time
	b.Handle(func(m Message) { atB = clk.Now() })
	a.Handle(func(m Message) { atA = clk.Now() })
	if err := a.Send(Message{To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{To: "a"}); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if atB.Sub(DefaultEpoch) != 10*time.Millisecond {
		t.Fatalf("a->b latency = %v, want 10ms", atB.Sub(DefaultEpoch))
	}
	if atA.Sub(DefaultEpoch) != 200*time.Millisecond {
		t.Fatalf("b->a latency = %v, want 200ms", atA.Sub(DefaultEpoch))
	}
}

func TestStatsAccounting(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	b.Handle(func(m Message) {})
	for i := 0; i < 10; i++ {
		if err := a.Send(Message{To: "b", Payload: make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()
	st := net.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Bytes != 1000 {
		t.Fatalf("stats = %+v, want 10 sent, 10 delivered, 1000 bytes", st)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		clk := vclock.NewSimulated(DefaultEpoch)
		net := New(WithClock(clk), WithSeed(7))
		a := net.MustAddNode("a")
		b := net.MustAddNode("b")
		net.SetLink("a", "b", LinkProfile{Latency: time.Millisecond, Jitter: 10 * time.Millisecond, Loss: 0.3})
		b.Handle(func(m Message) {})
		for i := 0; i < 500; i++ {
			_ = a.Send(Message{To: "b", Payload: []byte{byte(i)}})
		}
		clk.RunUntilIdle()
		return net.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("two identical runs diverged: %+v vs %+v", s1, s2)
	}
}

func TestSizeOverride(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	net.SetLink("a", "b", LinkProfile{Bandwidth: 1 << 20})
	var delivered bool
	b.Handle(func(m Message) { delivered = true })
	// 10 MB virtual body at 1 MB/s: 10 seconds on the wire.
	if err := a.Send(Message{To: "b", Size: 10 << 20}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(9 * time.Second)
	if delivered {
		t.Fatal("oversize message arrived early")
	}
	clk.Advance(2 * time.Second)
	if !delivered {
		t.Fatal("oversize message never arrived")
	}
}

// fifoEntries counts live FIFO high-water marks (white-box).
func (n *Network) fifoEntries() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.lastFIFO)
}

func TestFIFOBookkeepingPrunedOnHealAndCrash(t *testing.T) {
	net, clk := newTestNet(t)
	a := net.MustAddNode("a")
	b := net.MustAddNode("b")
	c := net.MustAddNode("c")
	var order []string
	b.Handle(func(m Message) { order = append(order, string(m.Payload)) })
	c.Handle(func(Message) {})
	// 1 KB/s bandwidth makes large messages slow, so FIFO marks matter.
	fifo := LinkProfile{Latency: 5 * time.Millisecond, FIFO: true, Bandwidth: 1024}
	net.SetLink("a", "b", fifo)
	net.SetLink("a", "c", fifo)

	for i := 0; i < 3; i++ {
		if err := a.Send(Message{To: "b", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(Message{To: "c", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()
	if got := net.fifoEntries(); got != 2 {
		t.Fatalf("fifo entries = %d, want 2", got)
	}

	// All marks are in the past now: a crash prunes the stale state.
	c.SetDown(true)
	if got := net.fifoEntries(); got != 0 {
		t.Fatalf("fifo entries after crash = %d, want 0", got)
	}
	c.SetDown(false)

	// An in-flight message's mark is in the future: Heal must keep it so
	// FIFO ordering survives, while hooks still fire.
	order = nil
	hooks := 0
	net.OnHeal(func() { hooks++ })
	if err := a.Send(Message{To: "b", Payload: []byte("1"), Size: 2048}); err != nil {
		t.Fatal(err) // ~2s transit at 1 KB/s
	}
	net.Partition([]Address{"a", "b"}, []Address{"c"})
	net.Heal()
	if hooks != 1 {
		t.Fatalf("heal hooks fired %d times", hooks)
	}
	if got := net.fifoEntries(); got != 1 {
		t.Fatalf("in-flight fifo mark pruned: entries = %d, want 1", got)
	}
	if err := a.Send(Message{To: "b", Payload: []byte("2")}); err != nil {
		t.Fatal(err) // small: would overtake "1" without the kept mark
	}
	clk.RunUntilIdle()
	if len(order) != 2 || order[0] != "1" || order[1] != "2" {
		t.Fatalf("order after heal = %v", order)
	}
	// Once delivered, the next heal clears the now-stale mark.
	net.Heal()
	if got := net.fifoEntries(); got != 0 {
		t.Fatalf("fifo entries after final heal = %d, want 0", got)
	}
}
