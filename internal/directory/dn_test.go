package directory

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDN(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"cn=Prinz,ou=CSCW,o=GMD,c=DE", "cn=Prinz,ou=CSCW,o=GMD,c=DE", false},
		{"", "", false},
		{"   ", "", false},
		{"cn=Navarro\\, Leandro,o=UPC", "cn=Navarro\\, Leandro,o=UPC", false},
		{"CN=Rodden, OU = Computing , O=Lancaster", "cn=Rodden,ou=Computing,o=Lancaster", false},
		{"novalue", "", true},
		{"=x", "", true},
		{"cn=", "", true},
		{"cn=a=b", "", true},
	}
	for _, tt := range tests {
		dn, err := ParseDN(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseDN(%q) = %v, want error", tt.in, dn)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDN(%q): %v", tt.in, err)
			continue
		}
		if got := dn.String(); got != tt.want {
			t.Errorf("ParseDN(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestDNEqualCaseInsensitive(t *testing.T) {
	a := MustParseDN("cn=Prinz,o=GMD")
	b := MustParseDN("CN=prinz,O=gmd")
	if !a.Equal(b) {
		t.Fatal("case-variant DNs not equal")
	}
	c := MustParseDN("cn=Rodden,o=GMD")
	if a.Equal(c) {
		t.Fatal("distinct DNs reported equal")
	}
}

func TestParentChild(t *testing.T) {
	dn := MustParseDN("cn=Prinz,ou=CSCW,o=GMD")
	p := dn.Parent()
	if p.String() != "ou=CSCW,o=GMD" {
		t.Fatalf("Parent = %q", p.String())
	}
	back := p.Child("cn", "Prinz")
	if !back.Equal(dn) {
		t.Fatalf("Child(Parent) = %q, want %q", back, dn)
	}
	root := DN{}
	if !root.Parent().IsRoot() {
		t.Fatal("root parent is not root")
	}
	if dn.RDNString() != "cn=Prinz" {
		t.Fatalf("RDNString = %q", dn.RDNString())
	}
}

func TestIsDescendantOf(t *testing.T) {
	org := MustParseDN("o=GMD")
	ou := MustParseDN("ou=CSCW,o=GMD")
	person := MustParseDN("cn=Prinz,ou=CSCW,o=GMD")
	other := MustParseDN("cn=Prinz,ou=CSCW,o=UPC")
	if !person.IsDescendantOf(org) || !person.IsDescendantOf(ou) {
		t.Fatal("descendant not detected")
	}
	if person.IsDescendantOf(person) {
		t.Fatal("entry is its own descendant")
	}
	if other.IsDescendantOf(org) {
		t.Fatal("foreign subtree matched")
	}
	if !person.IsDescendantOf(DN{}) {
		t.Fatal("everything should descend from root")
	}
}

func TestDNRoundTripQuick(t *testing.T) {
	// Any parseable DN must round-trip through String/ParseDN.
	f := func(vals [3]string) bool {
		var parts []string
		for i, v := range vals {
			v = strings.TrimSpace(v)
			if v == "" || len(v) > 50 {
				return true
			}
			attr := []string{"cn", "ou", "o"}[i]
			parts = append(parts, attr+"="+escapeDN(v))
		}
		s := strings.Join(parts, ",")
		dn, err := ParseDN(s)
		if err != nil {
			return true // some generated values are legitimately unparseable
		}
		again, err := ParseDN(dn.String())
		if err != nil {
			return false
		}
		return again.Equal(dn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAttributes(t *testing.T) {
	a := NewAttributes("objectClass", "person", "CN", "Tom Rodden")
	a.Add("mail", "tom@lancaster.ac.uk")
	a.Add("mail", "rodden@comp.lancs.ac.uk")

	if got := a.First("cn"); got != "Tom Rodden" {
		t.Fatalf("First(cn) = %q", got)
	}
	if !a.Has("MAIL", "TOM@LANCASTER.AC.UK") {
		t.Fatal("Has is not case-insensitive")
	}
	if !a.Has("mail", "") {
		t.Fatal("presence test failed")
	}
	if a.Has("phone", "") {
		t.Fatal("absent attribute reported present")
	}

	a.Remove("mail", "tom@lancaster.ac.uk")
	if len(a["mail"]) != 1 {
		t.Fatalf("mail values = %v after Remove", a["mail"])
	}
	a.Remove("mail", "")
	if a.Has("mail", "") {
		t.Fatal("Remove whole attribute failed")
	}

	a.Replace("title", "researcher", "professor")
	if len(a["title"]) != 2 {
		t.Fatalf("Replace values = %v", a["title"])
	}
	a.Replace("title")
	if a.Has("title", "") {
		t.Fatal("Replace with no values should delete")
	}
}

func TestAttributesCloneIsDeep(t *testing.T) {
	a := NewAttributes("cn", "x")
	b := a.Clone()
	b.Add("cn", "y")
	if len(a["cn"]) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestAttributesNamesSorted(t *testing.T) {
	a := NewAttributes("zz", "1", "aa", "2", "mm", "3")
	names := a.Names()
	want := []string{"aa", "mm", "zz"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestBadDNError(t *testing.T) {
	_, err := ParseDN("justtext")
	if !errors.Is(err, ErrBadDN) {
		t.Fatalf("err = %v, want ErrBadDN", err)
	}
}
