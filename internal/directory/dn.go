// Package directory implements the X.500-style directory service the paper
// names as the environment's standard information repository ("smooth
// integration and utilization of standard information repositories, for
// example, the X.500 directory service").
//
// It provides a hierarchical Directory Information Tree (DIT) of attributed
// entries named by distinguished names, LDAP-style search filters, modify
// operations, alias dereferencing, and master/shadow replication. A DSA
// (server) exposes the service over rpc; DUA helpers wrap the client side.
package directory

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// RDN is a single relative distinguished name component, e.g. cn=Prinz.
type RDN struct {
	Attr  string
	Value string
}

// String renders the RDN with escaping.
func (r RDN) String() string {
	return escapeDN(strings.ToLower(r.Attr)) + "=" + escapeDN(r.Value)
}

// DN is a distinguished name: RDNs ordered from leaf to root, as in
// "cn=Prinz,ou=CSCW,o=GMD,c=DE".
type DN []RDN

// ErrBadDN reports a malformed distinguished name string.
var ErrBadDN = errors.New("directory: malformed DN")

// ParseDN parses a string form distinguished name. Empty input yields the
// root DN (len 0). Components are comma-separated attr=value pairs;
// backslash escapes ',', '=', '\', and leading/trailing spaces are trimmed
// unless escaped.
func ParseDN(s string) (DN, error) {
	if strings.TrimSpace(s) == "" {
		return DN{}, nil
	}
	var dn DN
	for _, part := range splitUnescaped(s, ',') {
		kv := splitUnescaped(part, '=')
		if len(kv) != 2 {
			return nil, fmt.Errorf("%w: component %q", ErrBadDN, part)
		}
		attr := strings.TrimSpace(unescapeDN(kv[0]))
		val := strings.TrimSpace(unescapeDN(kv[1]))
		if attr == "" || val == "" {
			return nil, fmt.Errorf("%w: empty attribute or value in %q", ErrBadDN, part)
		}
		dn = append(dn, RDN{Attr: strings.ToLower(attr), Value: val})
	}
	return dn, nil
}

// MustParseDN is ParseDN panicking on error; for literals in tests and
// examples.
func MustParseDN(s string) DN {
	dn, err := ParseDN(s)
	if err != nil {
		panic(err)
	}
	return dn
}

// String renders the DN in string form.
func (d DN) String() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Normalized returns a canonical key for map lookups: lowercase attributes,
// case-folded values.
func (d DN) Normalized() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = strings.ToLower(r.Attr) + "=" + strings.ToLower(r.Value)
	}
	return strings.Join(parts, ",")
}

// Equal reports whether two DNs name the same entry (case-insensitive
// values, per X.500 caseIgnoreMatch).
func (d DN) Equal(other DN) bool {
	return d.Normalized() == other.Normalized()
}

// Parent returns the DN with the leaf RDN removed; the root's parent is the
// root itself.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return DN{}
	}
	out := make(DN, len(d)-1)
	copy(out, d[1:])
	return out
}

// Child returns this DN extended with a new leaf RDN.
func (d DN) Child(attr, value string) DN {
	out := make(DN, 0, len(d)+1)
	out = append(out, RDN{Attr: strings.ToLower(attr), Value: value})
	out = append(out, d...)
	return out
}

// RDNString returns the leaf RDN in string form, or "" for the root.
func (d DN) RDNString() string {
	if len(d) == 0 {
		return ""
	}
	return d[0].String()
}

// IsRoot reports whether this is the empty (root) DN.
func (d DN) IsRoot() bool { return len(d) == 0 }

// Depth returns the number of RDN components.
func (d DN) Depth() int { return len(d) }

// IsDescendantOf reports whether d sits strictly below ancestor in the tree.
func (d DN) IsDescendantOf(ancestor DN) bool {
	if len(d) <= len(ancestor) {
		return false
	}
	offset := len(d) - len(ancestor)
	for i, r := range ancestor {
		mine := d[offset+i]
		if !strings.EqualFold(mine.Attr, r.Attr) || !strings.EqualFold(mine.Value, r.Value) {
			return false
		}
	}
	return true
}

// splitUnescaped splits s on sep, honouring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var parts []string
	var cur strings.Builder
	escaped := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			cur.WriteByte('\\')
			cur.WriteByte(c)
			escaped = false
		case c == '\\':
			escaped = true
		case c == sep:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if escaped {
		cur.WriteByte('\\') // dangling escape kept literally
	}
	parts = append(parts, cur.String())
	return parts
}

// escapeDN escapes DN-special characters in a value.
func escapeDN(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ',' || c == '=' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// unescapeDN removes backslash escapes.
func unescapeDN(s string) string {
	var b strings.Builder
	escaped := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if escaped {
			b.WriteByte(c)
			escaped = false
			continue
		}
		if c == '\\' {
			escaped = true
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Attributes is a multi-valued attribute set. Keys are case-insensitive and
// stored lowercase.
type Attributes map[string][]string

// NewAttributes builds an attribute set from alternating key, value pairs.
func NewAttributes(kv ...string) Attributes {
	if len(kv)%2 != 0 {
		panic("directory: NewAttributes needs key/value pairs")
	}
	a := make(Attributes, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		a.Add(kv[i], kv[i+1])
	}
	return a
}

// Add appends a value to an attribute.
func (a Attributes) Add(attr, value string) {
	k := strings.ToLower(attr)
	a[k] = append(a[k], value)
}

// Replace sets the attribute to exactly the given values.
func (a Attributes) Replace(attr string, values ...string) {
	k := strings.ToLower(attr)
	if len(values) == 0 {
		delete(a, k)
		return
	}
	a[k] = append([]string(nil), values...)
}

// Remove deletes a specific value, or the whole attribute when value is "".
func (a Attributes) Remove(attr, value string) {
	k := strings.ToLower(attr)
	if value == "" {
		delete(a, k)
		return
	}
	vals := a[k]
	out := vals[:0]
	for _, v := range vals {
		if !strings.EqualFold(v, value) {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		delete(a, k)
		return
	}
	a[k] = out
}

// First returns the first value of the attribute, or "".
func (a Attributes) First(attr string) string {
	vals := a[strings.ToLower(attr)]
	if len(vals) == 0 {
		return ""
	}
	return vals[0]
}

// Has reports whether the attribute holds the given value
// (case-insensitive). An empty value tests mere presence.
func (a Attributes) Has(attr, value string) bool {
	vals, ok := a[strings.ToLower(attr)]
	if !ok {
		return false
	}
	if value == "" {
		return true
	}
	for _, v := range vals {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

// Clone deep-copies the attribute set.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, vals := range a {
		out[k] = append([]string(nil), vals...)
	}
	return out
}

// Names returns the sorted attribute names.
func (a Attributes) Names() []string {
	names := make([]string, 0, len(a))
	for k := range a {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
