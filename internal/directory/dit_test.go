package directory

import (
	"errors"
	"fmt"
	"testing"
)

// seedDIT builds the small organisation tree used across tests:
//
//	o=GMD
//	  ou=CSCW
//	    cn=Prinz (person)
//	    cn=Klaus (person)
//	  ou=ODP
//	    cn=Meer (person)
//	o=UPC
//	  cn=Navarro (person)
//	cn=PrinzAlias -> cn=Prinz,ou=CSCW,o=GMD
func seedDIT(t *testing.T) *DIT {
	t.Helper()
	d := NewDIT()
	add := func(dn string, attrs Attributes) {
		t.Helper()
		if err := d.Add(MustParseDN(dn), attrs); err != nil {
			t.Fatalf("Add(%s): %v", dn, err)
		}
	}
	add("o=GMD", NewAttributes("objectclass", ClassOrganization, "o", "GMD"))
	add("ou=CSCW,o=GMD", NewAttributes("objectclass", ClassOrgUnit, "ou", "CSCW"))
	add("ou=ODP,o=GMD", NewAttributes("objectclass", ClassOrgUnit, "ou", "ODP"))
	add("cn=Prinz,ou=CSCW,o=GMD", PersonEntry("Prinz", "Prinz", "prinz@gmd.de"))
	add("cn=Klaus,ou=CSCW,o=GMD", PersonEntry("Klaus", "Klaus", ""))
	add("cn=Meer,ou=ODP,o=GMD", PersonEntry("Meer", "de Meer", "meer@gmd.de"))
	add("o=UPC", NewAttributes("objectclass", ClassOrganization, "o", "UPC"))
	add("cn=Navarro,o=UPC", PersonEntry("Navarro", "Navarro Moldes", "leandro@upc.es"))
	add("cn=PrinzAlias", NewAttributes(AliasAttr, "cn=Prinz,ou=CSCW,o=GMD"))
	return d
}

func TestAddRequiresParent(t *testing.T) {
	d := NewDIT()
	err := d.Add(MustParseDN("cn=X,ou=Nowhere,o=Gone"), nil)
	if !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v, want ErrNoParent", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	d := seedDIT(t)
	err := d.Add(MustParseDN("o=GMD"), nil)
	if !errors.Is(err, ErrEntryExists) {
		t.Fatalf("err = %v, want ErrEntryExists", err)
	}
}

func TestReadAndCopySemantics(t *testing.T) {
	d := seedDIT(t)
	e, err := d.Read(MustParseDN("cn=Prinz,ou=CSCW,o=GMD"))
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned entry must not affect the store.
	e.Attrs.Add("mail", "hacked@evil")
	again, err := d.Read(MustParseDN("cn=Prinz,ou=CSCW,o=GMD"))
	if err != nil {
		t.Fatal(err)
	}
	if again.Attrs.Has("mail", "hacked@evil") {
		t.Fatal("Read returned aliased storage")
	}
}

func TestDeleteLeafOnly(t *testing.T) {
	d := seedDIT(t)
	if err := d.Delete(MustParseDN("o=GMD")); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("delete non-leaf: %v, want ErrHasChildren", err)
	}
	if err := d.Delete(MustParseDN("cn=Klaus,ou=CSCW,o=GMD")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(MustParseDN("cn=Klaus,ou=CSCW,o=GMD")); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("read after delete: %v", err)
	}
}

func TestModifyAtomic(t *testing.T) {
	d := seedDIT(t)
	dn := MustParseDN("cn=Prinz,ou=CSCW,o=GMD")
	err := d.Modify(dn,
		Modification{Op: "add", Attr: "title", Value: "researcher"},
		Modification{Op: "bogus"},
	)
	if err == nil {
		t.Fatal("modify with bad op succeeded")
	}
	e, _ := d.Read(dn)
	if e.Attrs.Has("title", "") {
		t.Fatal("partial modify applied; not atomic")
	}

	if err := d.Modify(dn,
		Modification{Op: "add", Attr: "title", Value: "researcher"},
		Modification{Op: "replace", Attr: "mail", Values: []string{"wp@gmd.de"}},
		Modification{Op: "remove", Attr: "sn", Value: ""},
	); err != nil {
		t.Fatal(err)
	}
	e, _ = d.Read(dn)
	if !e.Attrs.Has("title", "researcher") || e.Attrs.First("mail") != "wp@gmd.de" || e.Attrs.Has("sn", "") {
		t.Fatalf("modify result: %v", e.Attrs)
	}
}

func TestSearchScopes(t *testing.T) {
	d := seedDIT(t)
	tests := []struct {
		name  string
		base  string
		scope Scope
		want  int
	}{
		{"base", "o=GMD", ScopeBase, 1},
		{"one-level", "o=GMD", ScopeOneLevel, 2},
		{"subtree", "o=GMD", ScopeSubtree, 6},
		{"subtree root", "", ScopeSubtree, 9},
		{"one-level root", "", ScopeOneLevel, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := d.Search(SearchRequest{Base: MustParseDN(tt.base), Scope: tt.scope})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tt.want {
				var dns []string
				for _, e := range got {
					dns = append(dns, e.DN.String())
				}
				t.Fatalf("got %d entries %v, want %d", len(got), dns, tt.want)
			}
		})
	}
}

func TestSearchFilter(t *testing.T) {
	d := seedDIT(t)
	got, err := d.Search(SearchRequest{
		Base:   DN{},
		Scope:  ScopeSubtree,
		Filter: MustParseFilter("(&(objectclass=person)(mail=*))"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d persons with mail, want 3", len(got))
	}
}

func TestSearchSizeLimit(t *testing.T) {
	d := seedDIT(t)
	got, err := d.Search(SearchRequest{Base: DN{}, Scope: ScopeSubtree, SizeLimit: 2})
	if !errors.Is(err, ErrSizeLimit) {
		t.Fatalf("err = %v, want ErrSizeLimit", err)
	}
	if len(got) != 2 {
		t.Fatalf("partial result = %d entries, want 2", len(got))
	}
}

func TestSearchBadBase(t *testing.T) {
	d := seedDIT(t)
	_, err := d.Search(SearchRequest{Base: MustParseDN("o=Nowhere")})
	if !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("err = %v, want ErrNoSuchEntry", err)
	}
}

func TestAliasDeref(t *testing.T) {
	d := seedDIT(t)
	got, err := d.Search(SearchRequest{
		Base:         MustParseDN("cn=PrinzAlias"),
		Scope:        ScopeBase,
		Filter:       MustParseFilter("(cn=Prinz)"),
		DerefAliases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Attrs.First("mail") != "prinz@gmd.de" {
		t.Fatalf("alias deref returned %v", got)
	}
	// Without deref the alias entry itself has no cn.
	got, err = d.Search(SearchRequest{
		Base:   MustParseDN("cn=PrinzAlias"),
		Scope:  ScopeBase,
		Filter: MustParseFilter("(cn=Prinz)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("filter matched alias without deref")
	}
}

func TestAliasLoopDetected(t *testing.T) {
	d := NewDIT()
	if err := d.Add(MustParseDN("cn=A"), NewAttributes(AliasAttr, "cn=B")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(MustParseDN("cn=B"), NewAttributes(AliasAttr, "cn=A")); err != nil {
		t.Fatal(err)
	}
	_, err := d.Search(SearchRequest{Base: MustParseDN("cn=A"), Scope: ScopeBase, DerefAliases: true})
	if !errors.Is(err, ErrAliasLoop) {
		t.Fatalf("err = %v, want ErrAliasLoop", err)
	}
}

func TestList(t *testing.T) {
	d := seedDIT(t)
	kids, err := d.List(MustParseDN("o=GMD"))
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("List(o=GMD) = %d entries", len(kids))
	}
	if _, err := d.List(MustParseDN("o=Nope")); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("List missing: %v", err)
	}
}

func TestChangelogAndApply(t *testing.T) {
	master := seedDIT(t)
	shadow := NewDIT()
	for _, c := range master.Changes(0) {
		if err := shadow.Apply(c); err != nil {
			t.Fatalf("Apply seq %d: %v", c.Seq, err)
		}
	}
	if shadow.Len() != master.Len() {
		t.Fatalf("shadow has %d entries, master %d", shadow.Len(), master.Len())
	}
	// Incremental change propagates.
	dn := MustParseDN("cn=Prinz,ou=CSCW,o=GMD")
	if err := master.Modify(dn, Modification{Op: "add", Attr: "title", Value: "dr"}); err != nil {
		t.Fatal(err)
	}
	for _, c := range master.Changes(shadow.LastSeq()) {
		if err := shadow.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	e, err := shadow.Read(dn)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Attrs.Has("title", "dr") {
		t.Fatal("modify did not replicate")
	}
}

func TestApplyRejectsGaps(t *testing.T) {
	master := seedDIT(t)
	shadow := NewDIT()
	changes := master.Changes(0)
	if err := shadow.Apply(changes[1]); !errors.Is(err, ErrBadChangeSeq) {
		t.Fatalf("err = %v, want ErrBadChangeSeq", err)
	}
}

func TestSnapshotLoad(t *testing.T) {
	master := seedDIT(t)
	entries, seq := master.Snapshot()
	shadow := NewDIT()
	if err := shadow.LoadSnapshot(entries, seq); err != nil {
		t.Fatal(err)
	}
	if shadow.Len() != master.Len() || shadow.LastSeq() != seq {
		t.Fatalf("snapshot load: len %d seq %d, want %d %d", shadow.Len(), shadow.LastSeq(), master.Len(), seq)
	}
	// Changes after a snapshot continue from seq.
	if err := master.Add(MustParseDN("ou=New,o=GMD"), nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range master.Changes(seq) {
		if err := shadow.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := shadow.Read(MustParseDN("ou=New,o=GMD")); err != nil {
		t.Fatal("post-snapshot change did not apply")
	}
}

func TestCompactLog(t *testing.T) {
	master := seedDIT(t)
	mid := master.LastSeq() / 2
	master.CompactLog(mid)
	changes := master.Changes(0)
	for _, c := range changes {
		if c.Seq <= mid {
			t.Fatalf("compacted record seq %d still present", c.Seq)
		}
	}
}

func TestLargeTreeSearch(t *testing.T) {
	d := NewDIT()
	if err := d.Add(MustParseDN("o=Big"), nil); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		dn := MustParseDN(fmt.Sprintf("cn=user%03d,o=Big", i))
		attrs := PersonEntry(fmt.Sprintf("user%03d", i), "U", "")
		attrs.Add("dept", []string{"eng", "sales", "hr"}[i%3])
		if err := d.Add(dn, attrs); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Search(SearchRequest{
		Base:   MustParseDN("o=Big"),
		Scope:  ScopeSubtree,
		Filter: MustParseFilter("(dept=eng)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (n + 2) / 3
	if len(got) != want {
		t.Fatalf("got %d eng entries, want %d", len(got), want)
	}
}
