package directory

import (
	"errors"
	"testing"
	"testing/quick"
)

func personAttrs() Attributes {
	return NewAttributes(
		"objectclass", "person",
		"cn", "Wolfgang Prinz",
		"sn", "Prinz",
		"ou", "CSCW",
		"age", "35",
		"mail", "prinz@gmd.de",
	)
}

func TestFilterMatching(t *testing.T) {
	a := personAttrs()
	tests := []struct {
		name   string
		filter Filter
		want   bool
	}{
		{"eq hit", Eq("cn", "Wolfgang Prinz"), true},
		{"eq case-insensitive", Eq("CN", "wolfgang prinz"), true},
		{"eq miss", Eq("cn", "Tom Rodden"), false},
		{"present hit", Present("mail"), true},
		{"present miss", Present("fax"), false},
		{"substr prefix", Substr("cn", "Wolf*"), true},
		{"substr infix", Substr("cn", "*gang*"), true},
		{"substr multi-star", Substr("mail", "*@*.de"), true},
		{"substr miss", Substr("cn", "Tom*"), false},
		{"ge numeric hit", Ge("age", "30"), true},
		{"ge numeric miss", Ge("age", "40"), false},
		{"le numeric hit", Le("age", "35"), true},
		{"le string", Le("sn", "Z"), true},
		{"and hit", And(Eq("ou", "CSCW"), Present("mail")), true},
		{"and miss", And(Eq("ou", "CSCW"), Present("fax")), false},
		{"or hit", Or(Eq("ou", "ODP"), Eq("ou", "CSCW")), true},
		{"or miss", Or(Eq("ou", "ODP"), Eq("ou", "HCI")), false},
		{"not", Not(Eq("ou", "ODP")), true},
		{"all", All(), true},
		{"nested", And(Or(Eq("ou", "CSCW"), Eq("ou", "ODP")), Not(Present("fax"))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.filter.Matches(a); got != tt.want {
				t.Fatalf("%s.Matches = %v, want %v", tt.filter, got, tt.want)
			}
		})
	}
}

func TestParseFilter(t *testing.T) {
	a := personAttrs()
	tests := []struct {
		in   string
		want bool
	}{
		{"(cn=Wolfgang Prinz)", true},
		{"(cn=wolf*)", true},
		{"(mail=*)", true},
		{"(fax=*)", false},
		{"(age>=30)", true},
		{"(age<=30)", false},
		{"(&(objectclass=person)(ou=CSCW))", true},
		{"(&(objectclass=person)(ou=ODP))", false},
		{"(|(ou=ODP)(ou=CSCW))", true},
		{"(!(ou=ODP))", true},
		{"(&(|(ou=CSCW)(ou=ODP))(!(sn=Rodden)))", true},
		{"(cn=\\(weird\\))", false}, // escaped parens parse, just don't match
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			f, err := ParseFilter(tt.in)
			if err != nil {
				t.Fatalf("ParseFilter(%q): %v", tt.in, err)
			}
			if got := f.Matches(a); got != tt.want {
				t.Fatalf("%q matched %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{
		"", "cn=x", "(cn=x", "(cn=x))", "(&)", "(|)", "(!)",
		"(=x)", "(cn=)", "(cn>x)", "(cn<x)", "((cn=x))",
	} {
		if f, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) = %v, want error", bad, f)
		}
	}
	if _, err := ParseFilter("(cn=x"); !errors.Is(err, ErrBadFilter) {
		t.Fatal("error does not wrap ErrBadFilter")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	filters := []Filter{
		Eq("cn", "Prinz"),
		Present("mail"),
		Substr("cn", "W*z"),
		Ge("age", "10"),
		Le("age", "99"),
		And(Eq("a", "1"), Or(Eq("b", "2"), Not(Present("c")))),
	}
	attrs := NewAttributes("cn", "Prinz", "mail", "x", "age", "50", "a", "1", "b", "2")
	for _, f := range filters {
		parsed, err := ParseFilter(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if parsed.Matches(attrs) != f.Matches(attrs) {
			t.Fatalf("round-trip changed semantics for %q", f.String())
		}
	}
}

func TestGlobMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true},
		{"*", "", true},
		{"*", "anything", true},
		{"a*", "abc", true},
		{"*c", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "acb", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"**", "x", true},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestQuickParseFilterNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseFilter(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNotInvolution(t *testing.T) {
	attrs := personAttrs()
	f := func(attr, val string) bool {
		inner := Eq(attr, val)
		return Not(Not(inner)).Matches(attrs) == inner.Matches(attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	attrs := personAttrs()
	f := func(a1, v1, a2, v2 string) bool {
		p, q := Eq(a1, v1), Eq(a2, v2)
		lhs := Not(And(p, q)).Matches(attrs)
		rhs := Or(Not(p), Not(q)).Matches(attrs)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
