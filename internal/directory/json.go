package directory

import "encoding/json"

// decodeJSON is a tiny indirection so server.go stays focused on protocol
// logic.
func decodeJSON(data []byte, v any) error { return json.Unmarshal(data, v) }
