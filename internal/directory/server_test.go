package directory

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

type dsaFixture struct {
	clk    *vclock.Simulated
	net    *netsim.Network
	server *Server
	client *Client
	shadow *Shadow
	shDIT  *DIT
}

// newDSAFixture wires a DSA on node "dsa", a client on node "ua", and a
// shadow DSA on node "shadow".
func newDSAFixture(t *testing.T) *dsaFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(11))

	dsaEP := rpc.NewEndpoint(net.MustAddNode("dsa"), clk)
	uaEP := rpc.NewEndpoint(net.MustAddNode("ua"), clk)
	shEP := rpc.NewEndpoint(net.MustAddNode("shadow"), clk)

	server := NewServer(dsaEP, NewDIT())
	client := NewClient(uaEP, "dsa")
	shDIT := NewDIT()
	shadow := NewShadow(shEP, "dsa", shDIT, clk, 10*time.Second)

	return &dsaFixture{clk: clk, net: net, server: server, client: client, shadow: shadow, shDIT: shDIT}
}

// drive runs a blocking client op from a second goroutine while the test
// goroutine drives the simulated clock. A small real-time sleep between
// advances lets the op goroutine finish its (synchronous) setup before the
// simulated timeout can overtake it.
func (f *dsaFixture) drive(t *testing.T, op func() error) {
	t.Helper()
	if err := f.driveErr(t, op); err != nil {
		t.Fatal(err)
	}
}

func (f *dsaFixture) driveErr(t *testing.T, op func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			return err
		case <-deadline:
			t.Fatal("simulated op did not complete")
		default:
			time.Sleep(200 * time.Microsecond)
			f.clk.Advance(20 * time.Millisecond)
		}
	}
}

func TestClientAddReadSearch(t *testing.T) {
	f := newDSAFixture(t)
	f.drive(t, func() error { return f.client.Add("o=GMD", NewAttributes("objectclass", ClassOrganization)) })
	f.drive(t, func() error { return f.client.Add("ou=CSCW,o=GMD", NewAttributes("objectclass", ClassOrgUnit)) })
	f.drive(t, func() error {
		return f.client.Add("cn=Prinz,ou=CSCW,o=GMD", PersonEntry("Prinz", "Prinz", "prinz@gmd.de"))
	})

	var entry *Entry
	f.drive(t, func() error {
		var err error
		entry, err = f.client.Read("cn=Prinz,ou=CSCW,o=GMD")
		return err
	})
	if entry.Attrs.First("mail") != "prinz@gmd.de" {
		t.Fatalf("read entry attrs = %v", entry.Attrs)
	}

	var found []*Entry
	f.drive(t, func() error {
		var err error
		found, err = f.client.Search("o=GMD", ScopeSubtree, "(objectclass=person)")
		return err
	})
	if len(found) != 1 || !found[0].DN.Equal(MustParseDN("cn=Prinz,ou=CSCW,o=GMD")) {
		t.Fatalf("search found %v", found)
	}
}

func TestClientModifyDeleteList(t *testing.T) {
	f := newDSAFixture(t)
	f.drive(t, func() error { return f.client.Add("o=UPC", nil) })
	f.drive(t, func() error { return f.client.Add("cn=Navarro,o=UPC", PersonEntry("Navarro", "N", "")) })
	f.drive(t, func() error {
		return f.client.Modify("cn=Navarro,o=UPC", Modification{Op: "add", Attr: "title", Value: "prof"})
	})
	var entry *Entry
	f.drive(t, func() error {
		var err error
		entry, err = f.client.Read("cn=Navarro,o=UPC")
		return err
	})
	if !entry.Attrs.Has("title", "prof") {
		t.Fatal("modify not visible")
	}

	var kids []*Entry
	f.drive(t, func() error {
		var err error
		kids, err = f.client.List("o=UPC")
		return err
	})
	if len(kids) != 1 {
		t.Fatalf("list = %d", len(kids))
	}

	f.drive(t, func() error { return f.client.Delete("cn=Navarro,o=UPC") })
	err := f.driveErr(t, func() error {
		_, err := f.client.Read("cn=Navarro,o=UPC")
		return err
	})
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "no such entry") {
		t.Fatalf("read after delete: %v", err)
	}
}

func TestRemoteErrorsSurface(t *testing.T) {
	f := newDSAFixture(t)
	err := f.driveErr(t, func() error { return f.client.Add("cn=X,ou=Missing,o=Gone", nil) })
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	err = f.driveErr(t, func() error {
		_, err := f.client.Search("o=GMD", ScopeSubtree, "(((")
		return err
	})
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "filter") {
		t.Fatalf("bad filter err = %v", err)
	}
}

func TestShadowReplicationViaRPC(t *testing.T) {
	f := newDSAFixture(t)
	// Seed the master directly.
	seed := f.server.DIT()
	if err := seed.Add(MustParseDN("o=GMD"), nil); err != nil {
		t.Fatal(err)
	}
	if err := seed.Add(MustParseDN("cn=Prinz,o=GMD"), PersonEntry("Prinz", "P", "")); err != nil {
		t.Fatal(err)
	}

	f.shadow.Start()
	defer f.shadow.Stop()
	f.clk.Advance(time.Second) // first sync round-trip
	if f.shDIT.Len() != 2 {
		t.Fatalf("shadow has %d entries after first sync, want 2", f.shDIT.Len())
	}

	// New master writes replicate on the next tick.
	if err := seed.Add(MustParseDN("cn=Klaus,o=GMD"), PersonEntry("Klaus", "K", "")); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(11 * time.Second)
	if f.shDIT.Len() != 3 {
		t.Fatalf("shadow has %d entries after incremental sync, want 3", f.shDIT.Len())
	}
}

func TestShadowFullResyncAfterCompaction(t *testing.T) {
	f := newDSAFixture(t)
	seed := f.server.DIT()
	if err := seed.Add(MustParseDN("o=GMD"), nil); err != nil {
		t.Fatal(err)
	}
	f.shadow.Start()
	defer f.shadow.Stop()
	f.clk.Advance(time.Second)
	if f.shDIT.Len() != 1 {
		t.Fatalf("initial sync failed: %d", f.shDIT.Len())
	}

	// Master adds more, then compacts the log past what the shadow has:
	// the shadow must detect the gap and full-resync.
	for _, dn := range []string{"ou=A,o=GMD", "ou=B,o=GMD", "ou=C,o=GMD"} {
		if err := seed.Add(MustParseDN(dn), nil); err != nil {
			t.Fatal(err)
		}
	}
	seed.CompactLog(seed.LastSeq())
	// Pretend the shadow lost sync state: reset to empty with stale seq 0.
	_ = f.shDIT.LoadSnapshot(nil, 0)
	f.clk.Advance(11 * time.Second) // sync: gap -> snapshot requested
	f.clk.Advance(time.Second)      // snapshot reply arrives
	if f.shDIT.Len() != 4 {
		t.Fatalf("shadow has %d entries after full resync, want 4", f.shDIT.Len())
	}
	if f.shDIT.LastSeq() != seed.LastSeq() {
		t.Fatalf("shadow seq %d, master %d", f.shDIT.LastSeq(), seed.LastSeq())
	}
}

func TestReadOnlyShadowRejectsWrites(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk))
	shEP := rpc.NewEndpoint(net.MustAddNode("dsa2"), clk)
	uaEP := rpc.NewEndpoint(net.MustAddNode("ua2"), clk)
	server := NewServer(shEP, NewDIT())
	server.SetReadOnly(true)
	client := NewClient(uaEP, "dsa2")

	done := make(chan error, 1)
	go func() { done <- client.Add("o=X", nil) }()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-done:
			var remote *rpc.RemoteError
			if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "read-only") {
				t.Fatalf("err = %v, want read-only remote error", err)
			}
			return
		case <-deadline:
			t.Fatal("op never completed")
		default:
			time.Sleep(200 * time.Microsecond)
			clk.Advance(20 * time.Millisecond)
		}
	}
}
