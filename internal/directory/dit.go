package directory

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Entry is a node in the Directory Information Tree.
type Entry struct {
	DN    DN
	Attrs Attributes
}

// Clone deep-copies the entry.
func (e *Entry) Clone() *Entry {
	dn := make(DN, len(e.DN))
	copy(dn, e.DN)
	return &Entry{DN: dn, Attrs: e.Attrs.Clone()}
}

// Scope selects how much of the subtree a search visits.
type Scope int

// Search scopes, mirroring X.511.
const (
	ScopeBase Scope = iota + 1
	ScopeOneLevel
	ScopeSubtree
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeBase:
		return "base"
	case ScopeOneLevel:
		return "one"
	case ScopeSubtree:
		return "sub"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// The attribute that marks an alias entry, per X.501.
const AliasAttr = "aliasedobjectname"

// Errors returned by DIT operations.
var (
	ErrNoSuchEntry   = errors.New("directory: no such entry")
	ErrEntryExists   = errors.New("directory: entry already exists")
	ErrNoParent      = errors.New("directory: parent entry does not exist")
	ErrHasChildren   = errors.New("directory: entry has children")
	ErrAliasLoop     = errors.New("directory: alias dereference loop")
	ErrSizeLimit     = errors.New("directory: size limit exceeded")
	ErrBadChangeSeq  = errors.New("directory: replication sequence gap")
	ErrReadOnlyShard = errors.New("directory: shadow is read-only")
)

// ChangeKind discriminates changelog records.
type ChangeKind int

// Changelog record kinds.
const (
	ChangeAdd ChangeKind = iota + 1
	ChangeDelete
	ChangeModify
)

// Change is a replicated modification. Seq numbers are dense and start at 1.
type Change struct {
	Seq   uint64
	Kind  ChangeKind
	DN    string
	Attrs Attributes // full post-image for Add/Modify
}

// DIT is an in-memory Directory Information Tree. It is safe for concurrent
// use. The zero value is NOT ready; use NewDIT.
type DIT struct {
	mu      sync.RWMutex
	entries map[string]*Entry // normalized DN -> entry
	childix map[string]map[string]bool
	log     []Change
	seq     uint64
}

// NewDIT creates an empty tree containing only the implicit root.
func NewDIT() *DIT {
	return &DIT{
		entries: make(map[string]*Entry),
		childix: make(map[string]map[string]bool),
	}
}

// Len returns the number of entries (excluding the implicit root).
func (d *DIT) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Add inserts an entry. Its parent must exist (or be the root).
func (d *DIT) Add(dn DN, attrs Attributes) error {
	if dn.IsRoot() {
		return fmt.Errorf("%w: cannot add root", ErrEntryExists)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dn.Normalized()
	if _, ok := d.entries[key]; ok {
		return fmt.Errorf("%w: %s", ErrEntryExists, dn)
	}
	parent := dn.Parent()
	if !parent.IsRoot() {
		if _, ok := d.entries[parent.Normalized()]; !ok {
			return fmt.Errorf("%w: %s", ErrNoParent, parent)
		}
	}
	if attrs == nil {
		attrs = make(Attributes)
	}
	d.entries[key] = &Entry{DN: dn, Attrs: attrs.Clone()}
	pk := parent.Normalized()
	if d.childix[pk] == nil {
		d.childix[pk] = make(map[string]bool)
	}
	d.childix[pk][key] = true
	d.appendChangeLocked(Change{Kind: ChangeAdd, DN: dn.String(), Attrs: attrs.Clone()})
	return nil
}

// Delete removes a leaf entry.
func (d *DIT) Delete(dn DN) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dn.Normalized()
	if _, ok := d.entries[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	if len(d.childix[key]) > 0 {
		return fmt.Errorf("%w: %s", ErrHasChildren, dn)
	}
	delete(d.entries, key)
	delete(d.childix, key)
	delete(d.childix[dn.Parent().Normalized()], key)
	d.appendChangeLocked(Change{Kind: ChangeDelete, DN: dn.String()})
	return nil
}

// Modification is one step of a Modify operation.
type Modification struct {
	Op    string // "add", "replace", "remove"
	Attr  string
	Value string // for remove: "" removes the whole attribute
	// Values used by replace (all values at once).
	Values []string
}

// Modify applies modifications atomically to one entry.
func (d *DIT) Modify(dn DN, mods ...Modification) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry, ok := d.entries[dn.Normalized()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	// Stage on a copy so a bad op mid-list leaves the entry untouched.
	staged := entry.Attrs.Clone()
	for _, m := range mods {
		switch m.Op {
		case "add":
			staged.Add(m.Attr, m.Value)
		case "replace":
			if len(m.Values) > 0 {
				staged.Replace(m.Attr, m.Values...)
			} else {
				staged.Replace(m.Attr, m.Value)
			}
		case "remove":
			staged.Remove(m.Attr, m.Value)
		default:
			return fmt.Errorf("directory: unknown modification op %q", m.Op)
		}
	}
	entry.Attrs = staged
	d.appendChangeLocked(Change{Kind: ChangeModify, DN: dn.String(), Attrs: staged.Clone()})
	return nil
}

// Read returns a copy of the entry at dn.
func (d *DIT) Read(dn DN) (*Entry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	entry, ok := d.entries[dn.Normalized()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	return entry.Clone(), nil
}

// List returns copies of the immediate children of dn, sorted by DN.
func (d *DIT) List(dn DN) ([]*Entry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	key := dn.Normalized()
	if !dn.IsRoot() {
		if _, ok := d.entries[key]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
		}
	}
	var out []*Entry
	for ck := range d.childix[key] {
		out = append(out, d.entries[ck].Clone())
	}
	sortEntries(out)
	return out, nil
}

// SearchRequest parameterises Search.
type SearchRequest struct {
	Base   DN
	Scope  Scope
	Filter Filter
	// SizeLimit caps results; zero means unlimited.
	SizeLimit int
	// DerefAliases follows alias entries encountered during the search.
	DerefAliases bool
}

// Search walks the tree under Base per Scope, returning entries matching
// Filter sorted by DN. If the size limit is hit the partial result is
// returned together with ErrSizeLimit.
func (d *DIT) Search(req SearchRequest) ([]*Entry, error) {
	if req.Filter == nil {
		req.Filter = All()
	}
	if req.Scope == 0 {
		req.Scope = ScopeSubtree
	}
	d.mu.RLock()
	defer d.mu.RUnlock()

	baseKey := req.Base.Normalized()
	if !req.Base.IsRoot() {
		if _, ok := d.entries[baseKey]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, req.Base)
		}
	}

	var out []*Entry
	var walk func(key string, depth int) error
	visit := func(e *Entry) error {
		target := e
		if req.DerefAliases && e.Attrs.Has(AliasAttr, "") {
			deref, err := d.derefLocked(e, 0)
			if err != nil {
				return err
			}
			target = deref
		}
		if req.Filter.Matches(target.Attrs) {
			if req.SizeLimit > 0 && len(out) >= req.SizeLimit {
				return ErrSizeLimit
			}
			out = append(out, target.Clone())
		}
		return nil
	}
	walk = func(key string, depth int) error {
		if entry, ok := d.entries[key]; ok {
			include := false
			switch req.Scope {
			case ScopeBase:
				include = depth == 0
			case ScopeOneLevel:
				include = depth == 1
			case ScopeSubtree:
				include = true
			}
			if include {
				if err := visit(entry); err != nil {
					return err
				}
			}
		}
		if req.Scope == ScopeBase && depth >= 0 {
			if depth == 0 && len(d.childix[key]) == 0 {
				return nil
			}
		}
		if req.Scope == ScopeOneLevel && depth >= 1 {
			return nil
		}
		if req.Scope == ScopeBase {
			return nil
		}
		children := make([]string, 0, len(d.childix[key]))
		for ck := range d.childix[key] {
			children = append(children, ck)
		}
		sort.Strings(children)
		for _, ck := range children {
			if err := walk(ck, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(baseKey, 0)
	if errors.Is(err, ErrSizeLimit) {
		sortEntries(out)
		return out, err
	}
	if err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

// derefLocked resolves an alias chain, bounded against loops.
func (d *DIT) derefLocked(e *Entry, hops int) (*Entry, error) {
	if hops > 8 {
		return nil, fmt.Errorf("%w: via %s", ErrAliasLoop, e.DN)
	}
	targetStr := e.Attrs.First(AliasAttr)
	if targetStr == "" {
		return e, nil
	}
	dn, err := ParseDN(targetStr)
	if err != nil {
		return nil, fmt.Errorf("directory: alias %s: %w", e.DN, err)
	}
	target, ok := d.entries[dn.Normalized()]
	if !ok {
		return nil, fmt.Errorf("%w: alias target %s", ErrNoSuchEntry, dn)
	}
	if target.Attrs.Has(AliasAttr, "") {
		return d.derefLocked(target, hops+1)
	}
	return target, nil
}

// Changes returns the changelog records with Seq > after, for replication.
func (d *DIT) Changes(after uint64) []Change {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Change
	for _, c := range d.log {
		if c.Seq > after {
			out = append(out, cloneChange(c))
		}
	}
	return out
}

// LastSeq returns the sequence number of the newest change.
func (d *DIT) LastSeq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seq
}

// CompactLog drops changelog records with Seq <= upTo; shadows that have
// not consumed them must full-resync.
func (d *DIT) CompactLog(upTo uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keep := d.log[:0]
	for _, c := range d.log {
		if c.Seq > upTo {
			keep = append(keep, c)
		}
	}
	d.log = keep
}

// Apply replays a replicated change onto this tree (used by shadow DSAs).
// Sequence numbers must arrive densely.
func (d *DIT) Apply(c Change) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.Seq != d.seq+1 {
		return fmt.Errorf("%w: have %d, got %d", ErrBadChangeSeq, d.seq, c.Seq)
	}
	dn, err := ParseDN(c.DN)
	if err != nil {
		return err
	}
	key := dn.Normalized()
	switch c.Kind {
	case ChangeAdd:
		if _, ok := d.entries[key]; ok {
			return fmt.Errorf("%w: %s", ErrEntryExists, dn)
		}
		d.entries[key] = &Entry{DN: dn, Attrs: c.Attrs.Clone()}
		pk := dn.Parent().Normalized()
		if d.childix[pk] == nil {
			d.childix[pk] = make(map[string]bool)
		}
		d.childix[pk][key] = true
	case ChangeDelete:
		delete(d.entries, key)
		delete(d.childix, key)
		delete(d.childix[dn.Parent().Normalized()], key)
	case ChangeModify:
		entry, ok := d.entries[key]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
		}
		entry.Attrs = c.Attrs.Clone()
	default:
		return fmt.Errorf("directory: unknown change kind %d", c.Kind)
	}
	d.seq = c.Seq
	d.log = append(d.log, cloneChange(c))
	return nil
}

// Snapshot returns a full copy of all entries, for shadow bootstrap.
func (d *DIT) Snapshot() ([]*Entry, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return out, d.seq
}

// LoadSnapshot replaces the tree contents with the given entries (sorted by
// depth so parents precede children) and sets the change sequence.
func (d *DIT) LoadSnapshot(entries []*Entry, seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = make(map[string]*Entry, len(entries))
	d.childix = make(map[string]map[string]bool)
	sorted := append([]*Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DN.Depth() < sorted[j].DN.Depth() })
	for _, e := range sorted {
		key := e.DN.Normalized()
		d.entries[key] = e.Clone()
		pk := e.DN.Parent().Normalized()
		if d.childix[pk] == nil {
			d.childix[pk] = make(map[string]bool)
		}
		d.childix[pk][key] = true
	}
	d.seq = seq
	d.log = nil
	return nil
}

func (d *DIT) appendChangeLocked(c Change) {
	d.seq++
	c.Seq = d.seq
	d.log = append(d.log, c)
}

func cloneChange(c Change) Change {
	out := c
	if c.Attrs != nil {
		out.Attrs = c.Attrs.Clone()
	}
	return out
}

func sortEntries(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].DN.Normalized() < entries[j].DN.Normalized()
	})
}

// Common object classes used across the repository.
const (
	ClassPerson       = "person"
	ClassOrgUnit      = "organizationalunit"
	ClassOrganization = "organization"
	ClassApplication  = "applicationentity"
	ClassRole         = "organizationalrole"
	ClassResource     = "resource"
	ClassActivity     = "groupactivity"
)

// PersonEntry builds conventional attributes for a person.
func PersonEntry(cn, surname, mail string) Attributes {
	a := NewAttributes(
		"objectclass", ClassPerson,
		"cn", cn,
		"sn", surname,
	)
	if mail != "" {
		a.Add("mail", mail)
	}
	return a
}

// normalizeAttr lowercases an attribute name; exported helpers accept any
// case.
func normalizeAttr(s string) string { return strings.ToLower(s) }
