package directory

import (
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// RPC method names exposed by a DSA.
const (
	MethodRead     = "x500.read"
	MethodSearch   = "x500.search"
	MethodAdd      = "x500.add"
	MethodDelete   = "x500.delete"
	MethodModify   = "x500.modify"
	MethodList     = "x500.list"
	MethodChanges  = "x500.changes"
	MethodSnapshot = "x500.snapshot"
)

// WireEntry is the JSON-safe form of an Entry.
type WireEntry struct {
	DN    string     `json:"dn"`
	Attrs Attributes `json:"attrs"`
}

func toWire(e *Entry) WireEntry {
	return WireEntry{DN: e.DN.String(), Attrs: e.Attrs}
}

func fromWire(w WireEntry) (*Entry, error) {
	dn, err := ParseDN(w.DN)
	if err != nil {
		return nil, err
	}
	attrs := w.Attrs
	if attrs == nil {
		attrs = make(Attributes)
	}
	return &Entry{DN: dn, Attrs: attrs}, nil
}

type readReq struct {
	DN string `json:"dn"`
}

type searchReq struct {
	Base      string `json:"base"`
	Scope     int    `json:"scope"`
	Filter    string `json:"filter"`
	SizeLimit int    `json:"sizeLimit,omitempty"`
	Deref     bool   `json:"deref,omitempty"`
}

type searchResp struct {
	Entries []WireEntry `json:"entries"`
	Partial bool        `json:"partial,omitempty"`
}

type addReq struct {
	Entry WireEntry `json:"entry"`
}

type modifyReq struct {
	DN   string         `json:"dn"`
	Mods []Modification `json:"mods"`
}

type changesReq struct {
	After uint64 `json:"after"`
}

type changesResp struct {
	Changes []Change `json:"changes"`
	// Last is the master's newest sequence number; a shadow whose local
	// sequence trails Last while Changes is empty knows the log was
	// compacted underneath it and must full-resync.
	Last uint64 `json:"last"`
}

type snapshotResp struct {
	Entries []WireEntry `json:"entries"`
	Seq     uint64      `json:"seq"`
}

type okResp struct {
	OK bool `json:"ok"`
}

// Server is a Directory System Agent: a DIT bound to an rpc endpoint.
type Server struct {
	dit      *DIT
	endpoint *rpc.Endpoint
	readOnly bool // true for shadows
}

// NewServer installs DSA methods on the endpoint. The returned server owns
// the DIT.
func NewServer(endpoint *rpc.Endpoint, dit *DIT) *Server {
	s := &Server{dit: dit, endpoint: endpoint}
	s.register()
	return s
}

// DIT exposes the underlying tree (primarily for tests and local seeding).
func (s *Server) DIT() *DIT { return s.dit }

// SetReadOnly marks the server a shadow: write operations are rejected.
func (s *Server) SetReadOnly(ro bool) { s.readOnly = ro }

func (s *Server) register() {
	s.endpoint.MustRegister(MethodRead, rpc.HandleJSON(func(_ netsim.Address, req readReq) (WireEntry, error) {
		dn, err := ParseDN(req.DN)
		if err != nil {
			return WireEntry{}, err
		}
		e, err := s.dit.Read(dn)
		if err != nil {
			return WireEntry{}, err
		}
		return toWire(e), nil
	}))
	s.endpoint.MustRegister(MethodSearch, rpc.HandleJSON(func(_ netsim.Address, req searchReq) (searchResp, error) {
		base, err := ParseDN(req.Base)
		if err != nil {
			return searchResp{}, err
		}
		var filter Filter
		if req.Filter != "" {
			filter, err = ParseFilter(req.Filter)
			if err != nil {
				return searchResp{}, err
			}
		}
		entries, err := s.dit.Search(SearchRequest{
			Base:         base,
			Scope:        Scope(req.Scope),
			Filter:       filter,
			SizeLimit:    req.SizeLimit,
			DerefAliases: req.Deref,
		})
		partial := false
		if err == ErrSizeLimit {
			partial = true
		} else if err != nil {
			return searchResp{}, err
		}
		resp := searchResp{Partial: partial}
		for _, e := range entries {
			resp.Entries = append(resp.Entries, toWire(e))
		}
		return resp, nil
	}))
	s.endpoint.MustRegister(MethodAdd, rpc.HandleJSON(func(_ netsim.Address, req addReq) (okResp, error) {
		if s.readOnly {
			return okResp{}, ErrReadOnlyShard
		}
		e, err := fromWire(req.Entry)
		if err != nil {
			return okResp{}, err
		}
		if err := s.dit.Add(e.DN, e.Attrs); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegister(MethodDelete, rpc.HandleJSON(func(_ netsim.Address, req readReq) (okResp, error) {
		if s.readOnly {
			return okResp{}, ErrReadOnlyShard
		}
		dn, err := ParseDN(req.DN)
		if err != nil {
			return okResp{}, err
		}
		if err := s.dit.Delete(dn); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegister(MethodModify, rpc.HandleJSON(func(_ netsim.Address, req modifyReq) (okResp, error) {
		if s.readOnly {
			return okResp{}, ErrReadOnlyShard
		}
		dn, err := ParseDN(req.DN)
		if err != nil {
			return okResp{}, err
		}
		if err := s.dit.Modify(dn, req.Mods...); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegister(MethodList, rpc.HandleJSON(func(_ netsim.Address, req readReq) (searchResp, error) {
		dn, err := ParseDN(req.DN)
		if err != nil {
			return searchResp{}, err
		}
		entries, err := s.dit.List(dn)
		if err != nil {
			return searchResp{}, err
		}
		var resp searchResp
		for _, e := range entries {
			resp.Entries = append(resp.Entries, toWire(e))
		}
		return resp, nil
	}))
	s.endpoint.MustRegister(MethodChanges, rpc.HandleJSON(func(_ netsim.Address, req changesReq) (changesResp, error) {
		return changesResp{Changes: s.dit.Changes(req.After), Last: s.dit.LastSeq()}, nil
	}))
	s.endpoint.MustRegister(MethodSnapshot, rpc.HandleJSON(func(_ netsim.Address, _ struct{}) (snapshotResp, error) {
		entries, seq := s.dit.Snapshot()
		resp := snapshotResp{Seq: seq}
		for _, e := range entries {
			resp.Entries = append(resp.Entries, toWire(e))
		}
		return resp, nil
	}))
}

// Client is a Directory User Agent bound to one DSA address.
type Client struct {
	endpoint *rpc.Endpoint
	dsa      netsim.Address
}

// NewClient returns a DUA that issues operations to the DSA at addr.
func NewClient(endpoint *rpc.Endpoint, dsa netsim.Address) *Client {
	return &Client{endpoint: endpoint, dsa: dsa}
}

// Read fetches one entry.
func (c *Client) Read(dn string) (*Entry, error) {
	var w WireEntry
	if err := c.endpoint.CallJSON(c.dsa, MethodRead, readReq{DN: dn}, &w); err != nil {
		return nil, err
	}
	return fromWire(w)
}

// Search runs a filtered search under base.
func (c *Client) Search(base string, scope Scope, filter string) ([]*Entry, error) {
	var resp searchResp
	err := c.endpoint.CallJSON(c.dsa, MethodSearch, searchReq{
		Base: base, Scope: int(scope), Filter: filter,
	}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, 0, len(resp.Entries))
	for _, w := range resp.Entries {
		e, err := fromWire(w)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Add inserts an entry.
func (c *Client) Add(dn string, attrs Attributes) error {
	var resp okResp
	return c.endpoint.CallJSON(c.dsa, MethodAdd, addReq{Entry: WireEntry{DN: dn, Attrs: attrs}}, &resp)
}

// Delete removes a leaf entry.
func (c *Client) Delete(dn string) error {
	var resp okResp
	return c.endpoint.CallJSON(c.dsa, MethodDelete, readReq{DN: dn}, &resp)
}

// Modify applies attribute modifications.
func (c *Client) Modify(dn string, mods ...Modification) error {
	var resp okResp
	return c.endpoint.CallJSON(c.dsa, MethodModify, modifyReq{DN: dn, Mods: mods}, &resp)
}

// List returns the immediate children of dn.
func (c *Client) List(dn string) ([]*Entry, error) {
	var resp searchResp
	if err := c.endpoint.CallJSON(c.dsa, MethodList, readReq{DN: dn}, &resp); err != nil {
		return nil, err
	}
	out := make([]*Entry, 0, len(resp.Entries))
	for _, w := range resp.Entries {
		e, err := fromWire(w)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Shadow replicates a master DSA into a local DIT by periodically pulling
// the changelog, giving read access at remote sites without wide-area
// round-trips — the X.525 shadowing model.
type Shadow struct {
	local    *DIT
	endpoint *rpc.Endpoint
	master   netsim.Address
	clock    vclock.Clock
	interval time.Duration
	stopped  chan struct{}
	timer    vclock.Timer
}

// NewShadow creates a shadow that pulls from master every interval. Call
// Start to begin and Stop to halt.
func NewShadow(endpoint *rpc.Endpoint, master netsim.Address, local *DIT, clock vclock.Clock, interval time.Duration) *Shadow {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Shadow{
		local:    local,
		endpoint: endpoint,
		master:   master,
		clock:    clock,
		interval: interval,
		stopped:  make(chan struct{}),
	}
}

// Start triggers an immediate sync and schedules periodic ones.
func (sh *Shadow) Start() {
	sh.tick()
}

// Stop halts periodic syncing.
func (sh *Shadow) Stop() {
	select {
	case <-sh.stopped:
		return
	default:
	}
	close(sh.stopped)
	if sh.timer != nil {
		sh.timer.Stop()
	}
}

func (sh *Shadow) tick() {
	select {
	case <-sh.stopped:
		return
	default:
	}
	sh.SyncOnce()
	sh.timer = sh.clock.AfterFunc(sh.interval, sh.tick)
}

// SyncOnce pulls and applies outstanding changes; on a sequence gap it
// falls back to a full snapshot.
func (sh *Shadow) SyncOnce() {
	after := sh.local.LastSeq()
	sh.endpoint.GoJSON(sh.master, MethodChanges, changesReq{After: after}, func(r rpc.Result) {
		var resp changesResp
		if err := r.Decode(&resp); err != nil {
			return // transient; next tick retries
		}
		for _, ch := range resp.Changes {
			if err := sh.local.Apply(ch); err != nil {
				sh.fullResync()
				return
			}
		}
		if resp.Last > sh.local.LastSeq() {
			// The master compacted records we never saw.
			sh.fullResync()
		}
	})
}

func (sh *Shadow) fullResync() {
	sh.endpoint.GoJSON(sh.master, MethodSnapshot, struct{}{}, func(r rpc.Result) {
		var resp snapshotResp
		if err := r.Decode(&resp); err != nil {
			return
		}
		entries := make([]*Entry, 0, len(resp.Entries))
		for _, w := range resp.Entries {
			e, err := fromWire(w)
			if err != nil {
				return
			}
			entries = append(entries, e)
		}
		_ = sh.local.LoadSnapshot(entries, resp.Seq)
	})
}
