package directory

import (
	"errors"
	"fmt"
	"strings"
)

// Filter selects directory entries, mirroring X.500/LDAP search filters.
type Filter interface {
	// Matches reports whether the entry's attributes satisfy the filter.
	Matches(a Attributes) bool
	// String renders the filter in LDAP parenthesised form.
	String() string
}

// ErrBadFilter reports an unparsable filter string.
var ErrBadFilter = errors.New("directory: malformed filter")

// Eq matches entries where attr holds value (case-insensitive).
func Eq(attr, value string) Filter { return eqFilter{strings.ToLower(attr), value} }

// Present matches entries that have any value for attr.
func Present(attr string) Filter { return presentFilter{strings.ToLower(attr)} }

// Substr matches with "*" wildcards, e.g. Substr("cn", "w*prinz*").
func Substr(attr, pattern string) Filter {
	return substrFilter{strings.ToLower(attr), pattern}
}

// Ge matches entries where some value of attr is >= value (string order,
// numeric when both sides parse as integers).
func Ge(attr, value string) Filter { return cmpFilter{strings.ToLower(attr), value, true} }

// Le matches entries where some value of attr is <= value.
func Le(attr, value string) Filter { return cmpFilter{strings.ToLower(attr), value, false} }

// And matches when all sub-filters match.
func And(fs ...Filter) Filter { return andFilter(fs) }

// Or matches when any sub-filter matches.
func Or(fs ...Filter) Filter { return orFilter(fs) }

// Not inverts a filter.
func Not(f Filter) Filter { return notFilter{f} }

// All matches every entry.
func All() Filter { return allFilter{} }

type eqFilter struct{ attr, value string }

func (f eqFilter) Matches(a Attributes) bool { return a.Has(f.attr, f.value) }
func (f eqFilter) String() string            { return "(" + f.attr + "=" + escapeFilter(f.value) + ")" }

type presentFilter struct{ attr string }

func (f presentFilter) Matches(a Attributes) bool { return a.Has(f.attr, "") }
func (f presentFilter) String() string            { return "(" + f.attr + "=*)" }

type substrFilter struct{ attr, pattern string }

func (f substrFilter) Matches(a Attributes) bool {
	for _, v := range a[f.attr] {
		if globMatch(strings.ToLower(f.pattern), strings.ToLower(v)) {
			return true
		}
	}
	return false
}

func (f substrFilter) String() string { return "(" + f.attr + "=" + escapeFilter(f.pattern) + ")" }

type cmpFilter struct {
	attr  string
	value string
	ge    bool
}

func (f cmpFilter) Matches(a Attributes) bool {
	for _, v := range a[f.attr] {
		if f.ge && compareValues(v, f.value) >= 0 {
			return true
		}
		if !f.ge && compareValues(v, f.value) <= 0 {
			return true
		}
	}
	return false
}

func (f cmpFilter) String() string {
	op := ">="
	if !f.ge {
		op = "<="
	}
	return "(" + f.attr + op + escapeFilter(f.value) + ")"
}

type andFilter []Filter

func (f andFilter) Matches(a Attributes) bool {
	for _, sub := range f {
		if !sub.Matches(a) {
			return false
		}
	}
	return true
}

func (f andFilter) String() string { return compositeString("&", f) }

type orFilter []Filter

func (f orFilter) Matches(a Attributes) bool {
	for _, sub := range f {
		if sub.Matches(a) {
			return true
		}
	}
	return false
}

func (f orFilter) String() string { return compositeString("|", f) }

type notFilter struct{ inner Filter }

func (f notFilter) Matches(a Attributes) bool { return !f.inner.Matches(a) }
func (f notFilter) String() string            { return "(!" + f.inner.String() + ")" }

type allFilter struct{}

func (allFilter) Matches(Attributes) bool { return true }
func (allFilter) String() string          { return "(objectclass=*)" }

func compositeString(op string, fs []Filter) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(op)
	for _, f := range fs {
		b.WriteString(f.String())
	}
	b.WriteString(")")
	return b.String()
}

// compareValues compares numerically when both parse as integers, else by
// case-folded string order.
func compareValues(a, b string) int {
	ai, aok := parseInt(a)
	bi, bok := parseInt(b)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(strings.ToLower(a), strings.ToLower(b))
}

func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// globMatch matches pattern with '*' wildcards against s.
func globMatch(pattern, s string) bool {
	// Classic two-pointer glob with backtracking on the last star.
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case pi < len(pattern) && pattern[pi] == s[si]:
			pi++
			si++
		case star >= 0:
			mark++
			si = mark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

func escapeFilter(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '(' || c == ')' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// ParseFilter parses an LDAP-style parenthesised filter string, e.g.
//
//	(&(objectclass=person)(|(ou=CSCW)(ou=ODP))(!(status=retired)))
//
// Supported operators: & | ! = >= <= and "*" wildcards in values.
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{input: strings.TrimSpace(s)}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("%w: trailing input at %d", ErrBadFilter, p.pos)
	}
	return f, nil
}

// MustParseFilter is ParseFilter panicking on error.
func MustParseFilter(s string) Filter {
	f, err := ParseFilter(s)
	if err != nil {
		panic(err)
	}
	return f
}

type filterParser struct {
	input string
	pos   int
}

func (p *filterParser) parse() (Filter, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("%w: unexpected end", ErrBadFilter)
	}
	var f Filter
	var err error
	switch p.input[p.pos] {
	case '&':
		p.pos++
		subs, serr := p.parseList()
		if serr != nil {
			return nil, serr
		}
		f = And(subs...)
	case '|':
		p.pos++
		subs, serr := p.parseList()
		if serr != nil {
			return nil, serr
		}
		f = Or(subs...)
	case '!':
		p.pos++
		inner, serr := p.parse()
		if serr != nil {
			return nil, serr
		}
		f = Not(inner)
	default:
		f, err = p.parseSimple()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *filterParser) parseList() ([]Filter, error) {
	var subs []Filter
	for p.pos < len(p.input) && p.input[p.pos] == '(' {
		f, err := p.parse()
		if err != nil {
			return nil, err
		}
		subs = append(subs, f)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("%w: empty composite", ErrBadFilter)
	}
	return subs, nil
}

// parseSimple handles attr=value, attr>=value, attr<=value, attr=* and
// wildcard values.
func (p *filterParser) parseSimple() (Filter, error) {
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("=<>()", rune(p.input[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.input[start:p.pos])
	if attr == "" {
		return nil, fmt.Errorf("%w: missing attribute at %d", ErrBadFilter, start)
	}
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("%w: missing operator", ErrBadFilter)
	}
	var op string
	switch p.input[p.pos] {
	case '=':
		op = "="
		p.pos++
	case '>', '<':
		op = string(p.input[p.pos])
		p.pos++
		if p.pos >= len(p.input) || p.input[p.pos] != '=' {
			return nil, fmt.Errorf("%w: expected '=' after %q", ErrBadFilter, op)
		}
		op += "="
		p.pos++
	default:
		return nil, fmt.Errorf("%w: bad operator %q", ErrBadFilter, p.input[p.pos])
	}
	vstart := p.pos
	var val strings.Builder
	for p.pos < len(p.input) && p.input[p.pos] != ')' {
		c := p.input[p.pos]
		if c == '\\' && p.pos+1 < len(p.input) {
			p.pos++
			c = p.input[p.pos]
		}
		val.WriteByte(c)
		p.pos++
	}
	value := val.String()
	if p.pos == vstart && op == "=" {
		return nil, fmt.Errorf("%w: empty value", ErrBadFilter)
	}
	switch op {
	case ">=":
		return Ge(attr, value), nil
	case "<=":
		return Le(attr, value), nil
	}
	if value == "*" {
		return Present(attr), nil
	}
	if strings.Contains(value, "*") {
		return Substr(attr, value), nil
	}
	return Eq(attr, value), nil
}

func (p *filterParser) expect(c byte) error {
	if p.pos >= len(p.input) || p.input[p.pos] != c {
		return fmt.Errorf("%w: expected %q at %d", ErrBadFilter, string(c), p.pos)
	}
	p.pos++
	return nil
}
