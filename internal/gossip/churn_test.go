package gossip

import (
	"sort"
	"testing"
	"time"
)

// liveConnected reports whether the union of active-view edges joins
// every overlay except the named dead sites into one component.
func (f *overlayFixture) liveConnected(dead ...string) bool {
	down := map[string]bool{}
	for _, s := range dead {
		down[s] = true
	}
	adj := map[string]map[string]bool{}
	edge := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	live := 0
	var start string
	for _, o := range f.overlays {
		if down[o.Self().Site] {
			continue
		}
		live++
		if start == "" {
			start = o.Self().Site
		}
		for _, p := range o.ActiveView() {
			if down[p.Site] {
				continue
			}
			edge(o.Self().Site, p.Site)
			edge(p.Site, o.Self().Site)
		}
	}
	seen := map[string]bool{start: true}
	frontier := []string{start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	return len(seen) == live
}

// ringNeighbors returns site's successor candidates in ring order
// (successor first, then the fallbacks a crash makes the walk reach).
func (f *overlayFixture) ringNeighbors(site string) []string {
	sites := make([]string, len(f.overlays))
	for i, o := range f.overlays {
		sites[i] = o.Self().Site
	}
	sort.Strings(sites)
	idx := sort.SearchStrings(sites, site)
	var order []string
	for i := 1; i < len(sites); i++ {
		order = append(order, sites[(idx+i)%len(sites)])
	}
	return order
}

func inActive(o *Overlay, site string) bool {
	for _, p := range o.ActiveView() {
		if p.Site == site {
			return true
		}
	}
	return false
}

// TestRingSuccessorCrashDuringShuffle kills a site's pinned ring
// successor while a stabilization round (probe + shuffle) is in flight
// against it. The round must absorb the timeouts, demote the corpse, and
// the next ensureRing walk must pin the following site in ring order —
// the crashed successor is still advertised, so only the walk (not offer
// withdrawal) can route around it. After the crash heals, Mend must
// re-pin the true successor.
func TestRingSuccessorCrashDuringShuffle(t *testing.T) {
	f := newOverlayFixture(t, 10)
	first := f.overlays[0].Self().Site
	order := f.ringNeighbors(first)
	succ, next := order[0], order[1]
	if !inActive(f.overlays[0], succ) {
		t.Fatalf("%s: ring successor %s not pinned before the crash", first, succ)
	}

	// Arm a round everywhere and advance just far enough that the rounds
	// have fired and their probe/shuffle rpcs are in flight — but no
	// 800ms timeout has expired yet.
	for _, o := range f.overlays {
		o.Suspect()
	}
	f.clk.Advance(2 * time.Millisecond)
	if f.clk.Pending() == 0 {
		t.Fatal("no rpcs in flight — the crash would not be mid-round")
	}
	f.nodes[succ].SetDown(true)
	f.clk.RunUntilIdle()

	// The in-flight round and its successors must have walked the ring
	// past the corpse, not wedged on it.
	if inActive(f.overlays[0], succ) {
		t.Fatalf("%s still lists crashed successor %s in its active view", first, succ)
	}
	if !inActive(f.overlays[0], next) {
		t.Fatalf("%s: ring walk did not reach fallback successor %s (view %v)",
			first, next, f.overlays[0].ActiveView())
	}
	if !f.liveConnected(succ) {
		t.Fatal("live overlays no longer form a connected graph")
	}

	// Heal: the node returns, Mend resets the walk, and the true
	// successor must be re-pinned.
	f.nodes[succ].SetDown(false)
	for _, o := range f.overlays {
		o.Mend()
	}
	f.clk.RunUntilIdle()
	if !inActive(f.overlays[0], succ) {
		t.Fatalf("%s: healed successor %s not re-pinned after Mend (view %v)",
			first, succ, f.overlays[0].ActiveView())
	}
	if !f.liveConnected() {
		t.Fatal("overlay not fully connected after heal + Mend")
	}
}

// TestShufflePartnerRemovedMidRound drives churn into the shuffle path
// itself: every overlay is forced into back-to-back rounds while a third
// of the membership flaps down and up. No round may wedge (the clock
// must drain) and the survivors must remain one component throughout.
func TestShufflePartnerRemovedMidRound(t *testing.T) {
	f := newOverlayFixture(t, 12)
	flappers := []int{2, 5, 8}
	for round := 0; round < 3; round++ {
		for _, o := range f.overlays {
			o.Suspect()
		}
		f.clk.Advance(2 * time.Millisecond) // rounds fired, rpcs in flight
		var down []string
		for _, i := range flappers {
			site := f.overlays[i].Self().Site
			f.nodes[site].SetDown(true)
			down = append(down, site)
		}
		f.clk.RunUntilIdle()
		if !f.liveConnected(down...) {
			t.Fatalf("round %d: survivors split after mid-round crashes", round)
		}
		for _, site := range down {
			f.nodes[site].SetDown(false)
		}
		for _, o := range f.overlays {
			o.Mend()
		}
		f.clk.RunUntilIdle()
		if !f.liveConnected() {
			t.Fatalf("round %d: overlay split after heal", round)
		}
	}
	if f.clk.Pending() != 0 {
		t.Fatalf("%d timers still armed after churn settled", f.clk.Pending())
	}
}
