package gossip

import (
	"fmt"
	"sort"
	"testing"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// fakeReplica is a minimal Replica: it remembers applied rows and counts
// sync arms, so rumor mongering can be tested without a real replicator.
type fakeReplica struct {
	rows  map[string]vclock.Version
	armed int
}

func newFakeReplica() *fakeReplica {
	return &fakeReplica{rows: map[string]vclock.Version{}}
}

func (f *fakeReplica) HasSeen(id string, vv vclock.Version) bool {
	have, ok := f.rows[id]
	return ok && have.Dominates(vv)
}

func (f *fakeReplica) FetchWire(_ string, ids []string) []WireObject {
	var out []WireObject
	for _, id := range ids {
		if vv, ok := f.rows[id]; ok {
			out = append(out, WireObject{ID: id, VV: vv})
		}
	}
	return out
}

func (f *fakeReplica) ApplyWire(objs []WireObject) int {
	applied := 0
	for _, o := range objs {
		if have, ok := f.rows[o.ID]; ok && have.Dominates(o.VV) {
			continue
		}
		f.rows[o.ID] = o.VV
		applied++
	}
	return applied
}

func (f *fakeReplica) SyncSoon() { f.armed++ }

type overlayFixture struct {
	clk      *vclock.Simulated
	net      *netsim.Network
	nodes    map[string]*netsim.Node
	overlays []*Overlay
	replicas []*fakeReplica
	// advertised is the mutable membership directory all overlays share —
	// the stand-in for trader offers.
	advertised []Peer
}

// newOverlayFixture builds n overlays ("g00".."g<n-1>") over one
// simulated network, joins each, and drains to quiescence.
func newOverlayFixture(t *testing.T, n int, opts ...Option) *overlayFixture {
	t.Helper()
	f := &overlayFixture{
		clk:   vclock.NewSimulated(netsim.DefaultEpoch),
		nodes: map[string]*netsim.Node{},
	}
	f.net = netsim.New(netsim.WithClock(f.clk), netsim.WithSeed(7))
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("g%02d", i)
		addr := netsim.Address("gossip-" + site)
		f.advertised = append(f.advertised, Peer{Site: site, Addr: addr, Repl: addr})
	}
	for i := 0; i < n; i++ {
		p := f.advertised[i]
		node := f.net.MustAddNode(p.Addr)
		f.nodes[p.Site] = node
		ep := rpc.NewEndpoint(node, f.clk)
		rep := newFakeReplica()
		all := append([]Option{
			WithSeed(42),
			WithContacts(func() []Peer { return append([]Peer(nil), f.advertised...) }),
		}, opts...)
		f.replicas = append(f.replicas, rep)
		f.overlays = append(f.overlays, New(ep, f.clk, p.Site, p.Repl, rep, all...))
	}
	for _, o := range f.overlays {
		o.Join()
	}
	f.clk.RunUntilIdle()
	return f
}

// connected reports whether the union of active-view edges joins every
// overlay in one component.
func (f *overlayFixture) connected() bool {
	adj := map[string]map[string]bool{}
	edge := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for _, o := range f.overlays {
		for _, p := range o.ActiveView() {
			edge(o.Self().Site, p.Site)
			edge(p.Site, o.Self().Site)
		}
	}
	seen := map[string]bool{f.overlays[0].Self().Site: true}
	frontier := []string{f.overlays[0].Self().Site}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	return len(seen) == len(f.overlays)
}

func TestViewFormationSublinear(t *testing.T) {
	const n = 24
	f := newOverlayFixture(t, n)
	target := ilog2(n) + 2
	for _, o := range f.overlays {
		st := o.Stats()
		if st.ActiveSize == 0 {
			t.Fatalf("%s: empty active view", o.Self().Site)
		}
		if st.ActiveSize > target {
			t.Fatalf("%s: active view %d exceeds target %d — not sublinear",
				o.Self().Site, st.ActiveSize, target)
		}
	}
	if !f.connected() {
		t.Fatal("union of active views is not a connected graph")
	}
}

// TestRingSuccessorPinned: every overlay holds its sorted-ring successor
// in the active view — the deterministic connectivity backstop.
func TestRingSuccessorPinned(t *testing.T) {
	f := newOverlayFixture(t, 10)
	sites := make([]string, len(f.overlays))
	for i, o := range f.overlays {
		sites[i] = o.Self().Site
	}
	sort.Strings(sites)
	for i, site := range sites {
		succ := sites[(i+1)%len(sites)]
		var o *Overlay
		for _, cand := range f.overlays {
			if cand.Self().Site == site {
				o = cand
			}
		}
		found := false
		for _, p := range o.ActiveView() {
			if p.Site == succ {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: ring successor %s missing from active view %v",
				site, succ, o.ActiveView())
		}
	}
}

// TestProbeFailureDemotes: a dead peer is demoted out of every active
// view once Suspect triggers probing, and lands in passive views so a
// heal can bring it back.
func TestProbeFailureDemotes(t *testing.T) {
	f := newOverlayFixture(t, 8)
	dead := f.overlays[3].Self()
	f.nodes[dead.Site].SetDown(true)
	f.overlays[3].Close()
	for i, o := range f.overlays {
		if i != 3 {
			o.Suspect()
		}
	}
	f.clk.RunUntilIdle()
	for i, o := range f.overlays {
		if i == 3 {
			continue
		}
		for _, p := range o.ActiveView() {
			if p.Addr == dead.Addr {
				t.Fatalf("%s still lists dead %s in its active view", o.Self().Site, dead.Site)
			}
		}
	}
}

// TestRumorReachesEveryReplica: one Publish covers all members via
// TTL-limited forwarding plus fetch pulls — without any real replicator.
func TestRumorReachesEveryReplica(t *testing.T) {
	f := newOverlayFixture(t, 16)
	vv := vclock.Version{}.Tick("g00")
	f.replicas[0].rows["obj-1"] = vv
	f.overlays[0].Publish("obj-1", vv, nil)
	f.clk.RunUntilIdle()

	missing := 0
	for i, rep := range f.replicas {
		if !rep.HasSeen("obj-1", vv) {
			missing++
			t.Logf("replica %d missed the rumor", i)
		}
		if i != 0 && rep.HasSeen("obj-1", vv) && rep.armed == 0 {
			t.Fatalf("replica %d applied a rumor but never armed anti-entropy", i)
		}
	}
	// Rumor mongering is probabilistic coverage over the overlay graph —
	// but with whole-view fanout and the dedup-keyed re-forwarding, a
	// 16-member overlay must be fully covered.
	if missing > 0 {
		t.Fatalf("%d of %d replicas missed the rumor", missing, len(f.replicas))
	}
	pub := f.overlays[0].Stats()
	if pub.RumorsPublished != 1 {
		t.Fatalf("RumorsPublished = %d, want 1", pub.RumorsPublished)
	}
}

// TestDuplicateRumorNotReforwarded: publishing the same id+version twice
// does not restart the epidemic.
func TestDuplicateRumorNotReforwarded(t *testing.T) {
	f := newOverlayFixture(t, 6)
	vv := vclock.Version{}.Tick("g00")
	f.replicas[0].rows["obj-1"] = vv
	f.overlays[0].Publish("obj-1", vv, nil)
	f.clk.RunUntilIdle()
	var seen0 int64
	for _, o := range f.overlays {
		seen0 += o.Stats().RumorsSeen
	}
	f.overlays[0].Publish("obj-1", vv, nil) // same rumor again: deduped at the source
	f.clk.RunUntilIdle()
	var seen1 int64
	for _, o := range f.overlays {
		seen1 += o.Stats().RumorsSeen
	}
	if grew := seen1 - seen0; grew > int64(len(f.overlays)) {
		t.Fatalf("duplicate publish grew RumorsSeen by %d — it re-flooded", grew)
	}
}

// TestOverlayGoesDormant: after the views stabilize, no timers stay
// armed — the discrete-event loop must drain for deployment Run() to
// terminate.
func TestOverlayGoesDormant(t *testing.T) {
	f := newOverlayFixture(t, 12)
	if pending := f.clk.Pending(); pending != 0 {
		t.Fatalf("%d timers still armed after drain — the overlay never sleeps", pending)
	}
	rounds := func() int64 {
		var total int64
		for _, o := range f.overlays {
			total += o.Stats().Rounds
		}
		return total
	}
	before := rounds()
	f.clk.RunUntilIdle()
	if after := rounds(); after != before {
		t.Fatalf("rounds grew %d→%d with no stimulus", before, after)
	}
}

// TestMendReknitsAfterPartition: demoted peers return to the active
// views once the cut heals and Mend re-arms stabilization.
func TestMendReknitsAfterPartition(t *testing.T) {
	f := newOverlayFixture(t, 10)
	// Cut the first three members off.
	var a, b []netsim.Address
	for i, o := range f.overlays {
		if i < 3 {
			a = append(a, o.Self().Addr)
		} else {
			b = append(b, o.Self().Addr)
		}
	}
	f.net.Partition(a, b)
	for _, o := range f.overlays {
		o.Suspect()
	}
	f.clk.RunUntilIdle()

	f.net.Heal()
	for _, o := range f.overlays {
		o.Mend()
	}
	f.clk.RunUntilIdle()
	if !f.connected() {
		t.Fatal("overlay still split after Heal+Mend")
	}
}

// TestClosedOverlayRefusesProtocol: a crashed site's overlay stops
// mutating state; a join against it fails without wedging the caller.
func TestClosedOverlayRefusesProtocol(t *testing.T) {
	f := newOverlayFixture(t, 4)
	f.overlays[1].Close()
	before := f.overlays[1].Stats().ActiveSize
	f.overlays[0].Publish("obj-x", vclock.Version{}.Tick("g00"), nil)
	f.clk.RunUntilIdle()
	if got := f.overlays[1].Stats().ActiveSize; got != before {
		t.Fatalf("closed overlay's view changed %d→%d", before, got)
	}
}
