// Package gossip implements the epidemic overlay that lets a deployment
// scale past the full-mesh site peering: instead of every site syncing
// with every other site (O(n²) channels, offers, and per-peer Merkle
// trees), each site maintains a small partial view of the membership —
// HyParView-style — and runs anti-entropy only against that view, while
// fresh writes race ahead of the sync rounds as rumors.
//
// Three mechanisms cooperate:
//
//   - Partial-view membership. Each overlay keeps an active view of
//     ~⌈log₂ n⌉+c peers (the sites it actually syncs with) plus a larger
//     passive view of known-but-unused peers. The views are maintained by
//     join / forward-join / neighbor / shuffle / probe messages that ride
//     the ordinary rpc channel stack, so membership traffic is traced,
//     counted and fault-injectable like everything else. Peers are
//     discovered through trader offers (one "gossip-membership" offer per
//     live site), so membership is just another rules-over-offers
//     service. One active slot is pinned to the site's successor on the
//     sorted ring of advertised sites — a deterministic connectivity
//     backstop that keeps the union of active views a connected graph,
//     which is what makes drain-to-convergence a guarantee rather than a
//     probability.
//
//   - Rumor mongering. A fresh local write publishes a small rumor
//     (object id + version vector) to the active view with a hop-count
//     TTL. A receiver that has not seen the version pulls the row from
//     the rumor's sender (gossip.fetch), applies it, arms its own
//     anti-entropy round, and re-forwards the rumor — so hot updates
//     cover the overlay in O(log n) hops without waiting for sync
//     intervals, and anti-entropy remains the repair path rather than
//     the propagation path.
//
//   - View-scoped anti-entropy. The Replicator's peer set is driven by
//     the active view through the OnChange callback: peers entering the
//     view are added (and synced immediately — view churn re-arms
//     rounds), peers leaving are removed, which also releases their
//     placement-scoped Merkle trees. Placement interest biases both
//     promotion from the passive view and rumor target ordering, so
//     sites gossip hot spaces with placed peers first.
//
// The overlay is simulation-first like the replicator: all timers ride
// the injected clock, maintenance rounds are event-armed (join, view
// churn, Mend after a heal) and go dormant after a few quiet rounds or a
// run of failing ones, so a deployment drains to quiescence.
package gossip

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// RPC method names of the overlay protocol.
const (
	// MethodJoin introduces a new site to a contact: the contact admits
	// the joiner to its active view, spreads the joiner via forward-join,
	// and answers with a view sample the joiner bootstraps from.
	MethodJoin = "gossip.join"
	// MethodForwardJoin spreads a joiner across the overlay on a
	// TTL-limited walk; receivers with spare active capacity adopt it.
	MethodForwardJoin = "gossip.forward-join"
	// MethodNeighbor asks a peer to establish a symmetric active-view
	// link (promotion from the passive view, ring pinning, heal mends).
	MethodNeighbor = "gossip.neighbor"
	// MethodShuffle exchanges passive-view samples between two peers.
	MethodShuffle = "gossip.shuffle"
	// MethodProbe is the liveness check run against the active view.
	MethodProbe = "gossip.probe"
	// MethodRumor pushes fresh-write rumors (id + version vector, TTL).
	MethodRumor = "gossip.rumor"
	// MethodFetch pulls the rows behind a rumor from its sender.
	MethodFetch = "gossip.fetch"
)

// Trader vocabulary: each live site exports one membership offer, so the
// overlay discovers contacts the same way placement discovers holders.
const (
	// ServiceType is the trader service type of membership offers.
	ServiceType = "gossip-membership"
	// SiteProp is the offer property naming the advertising site.
	SiteProp = "gossip-site"
	// ReplProp is the offer property carrying the site's replication
	// endpoint address (the anti-entropy partner for this gossip peer).
	ReplProp = "gossip-repl"
)

// OfferID is the trader offer id a site advertises membership under.
func OfferID(site string) string { return "gossip-" + site }

// Tunables.
const (
	// DefaultInterval separates stabilization rounds while armed.
	DefaultInterval = 2 * time.Second
	// DefaultTimeout bounds each overlay rpc so a dead peer degrades the
	// round instead of stalling it.
	DefaultTimeout = 800 * time.Millisecond
	// DefaultTTL is the rumor hop budget — enough for the active-view
	// graph's diameter at 10³ sites.
	DefaultTTL = 6
	// DefaultWalkTTL is the forward-join walk length.
	DefaultWalkTTL = 3
	// DefaultQuietCap is how many consecutive no-change stabilization
	// rounds run before the overlay goes dormant until re-armed.
	DefaultQuietCap = 2
	// DefaultFailureCap is how many consecutive failing rounds run before
	// the overlay goes dormant (an unreachable ring successor or a
	// partition must not spin the event loop forever).
	DefaultFailureCap = 5
	// shuffleLen is how many peers one shuffle carries each way.
	shuffleLen = 8
	// seenCap bounds the rumor-dedup set; past it the set resets (stale
	// rumors are still cheap: HasSeen keeps them from re-applying).
	seenCap = 8192
)

// Peer identifies one overlay member: its site name, its gossip endpoint
// and its replication endpoint (what the anti-entropy layer peers with).
type Peer struct {
	Site string         `json:"site"`
	Addr netsim.Address `json:"addr"`
	Repl netsim.Address `json:"repl"`
}

// Replica is the slice of the replication layer the overlay needs: rumor
// staleness checks, the pull half of rumor mongering, and round arming.
// *replica.Replicator implements it.
type Replica interface {
	// HasSeen reports whether the local replica already holds id at a
	// version dominating vv.
	HasSeen(id string, vv vclock.Version) bool
	// FetchWire returns the named rows in wire form, placement-scoped to
	// the requesting site.
	FetchWire(forSite string, ids []string) []WireObject
	// ApplyWire merges fetched rows, returning how many changed state.
	ApplyWire(objs []WireObject) int
	// SyncSoon arms an anti-entropy round — rumor applies kick it so the
	// sync layer floods what rumors seeded.
	SyncSoon()
}

// Stats counts overlay activity. ActiveSize/PassiveSize are gauges
// snapshotted by Stats().
type Stats struct {
	Rounds          int64 // stabilization rounds run
	Joins           int64 // join requests served
	ForwardJoins    int64 // forward-join walks served
	Neighbors       int64 // neighbor requests served
	Shuffles        int64 // shuffle exchanges completed (either side)
	Probes          int64 // probes answered by live peers
	ProbeFailures   int64 // probes that timed out or errored
	Promotions      int64 // passive→active promotions
	Demotions       int64 // active→passive demotions (failure or eviction)
	RumorsPublished int64 // locally-originated rumor sends
	RumorsForwarded int64 // rumor re-forwards
	RumorsSeen      int64 // rumor entries received (fresh or duplicate)
	RumorFetches    int64 // fetch pulls issued for rumored rows
	RumorApplied    int64 // rows rumor fetches changed local state with

	ActiveSize  int // current active view size
	PassiveSize int // current passive view size
}

// Option configures an Overlay.
type Option func(*Overlay)

// WithActiveSize fixes the active-view size; 0 (default) derives
// ⌈log₂ n⌉+2 from the advertised membership.
func WithActiveSize(n int) Option { return func(o *Overlay) { o.activeSize = n } }

// WithPassiveSize fixes the passive-view size; 0 (default) derives
// 3×active+6.
func WithPassiveSize(n int) Option { return func(o *Overlay) { o.passiveSize = n } }

// WithFanout bounds how many active peers one rumor is pushed to;
// 0 (default) pushes to the whole active view — the deterministic-
// coverage choice.
func WithFanout(n int) Option { return func(o *Overlay) { o.fanout = n } }

// WithTTL sets the rumor hop budget.
func WithTTL(n int) Option { return func(o *Overlay) { o.ttl = n } }

// WithInterval sets the stabilization-round interval.
func WithInterval(d time.Duration) Option { return func(o *Overlay) { o.interval = d } }

// WithTimeout bounds each overlay rpc.
func WithTimeout(d time.Duration) Option { return func(o *Overlay) { o.timeout = d } }

// WithFailureCap sets how many consecutive failing stabilization rounds
// run before the overlay goes dormant until re-armed.
func WithFailureCap(n int) Option { return func(o *Overlay) { o.failureCap = n } }

// WithSeed derives the overlay's private PRNG (shuffle sampling,
// eviction tie-breaks) from the deployment seed; the site name is mixed
// in so overlays of one deployment do not move in lockstep.
func WithSeed(seed int64) Option { return func(o *Overlay) { o.seed = seed } }

// WithContacts installs the membership directory: the full list of
// advertised peers (self included is fine), typically resolved from
// trader offers. It is consulted for the bootstrap contact and the ring
// successor.
func WithContacts(fn func() []Peer) Option { return func(o *Overlay) { o.contacts = fn } }

// WithBias installs the placement-interest bias: higher-ranked sites are
// preferred when promoting from the passive view and ordered first among
// rumor targets, so hot spaces gossip with placed peers first.
func WithBias(fn func(site string) int) Option { return func(o *Overlay) { o.bias = fn } }

// WithTelemetry attaches the deployment telemetry plane: rumor publishes
// and forwards for a tagged object ride under the originating write's
// trace (an instant gossip.publish/gossip.forward span plus the context
// stamped on the rumor and fetch rpcs), so epidemic propagation shows up
// in the same trace as the write that seeded it.
func WithTelemetry(tel *observe.Telemetry) Option {
	return func(o *Overlay) {
		if tel != nil {
			o.tracer = tel.Tracer
			o.objects = tel.Objects
		}
	}
}

// WithOnChange installs the active-view churn callback — how the
// replication layer's peer set follows the overlay. It runs outside the
// overlay lock.
func WithOnChange(fn func(added, removed []Peer)) Option {
	return func(o *Overlay) { o.onChange = fn }
}

// Overlay is one site's membership agent: it serves the overlay protocol
// and runs event-armed stabilization rounds against its partial views.
type Overlay struct {
	ep       *rpc.Endpoint
	clock    vclock.Clock
	self     Peer
	replica  Replica
	contacts func() []Peer
	bias     func(site string) int
	onChange func(added, removed []Peer)
	tracer   *observe.Tracer
	objects  *observe.ObjectTraces

	activeSize  int
	passiveSize int
	fanout      int
	ttl         int
	walkTTL     int
	interval    time.Duration
	timeout     time.Duration
	quietCap    int
	failureCap  int
	seed        int64

	mu          sync.Mutex
	rng         *rand.Rand
	active      []Peer
	passive     []Peer
	ring        netsim.Address // pinned ring-successor, eviction-exempt
	ringSkip    int            // ring-order index the last successful walk pinned
	seen        map[uint64]bool
	closed      bool
	armed       bool
	running     bool
	want        bool
	viewVersion uint64 // bumped on every active-view change
	targetCache int    // last activeTarget() result, for locked paths
	quiet       int
	consecFail  int
	stats       Stats
}

// New binds an overlay to its endpoint and registers the protocol
// handlers. site/replAddr identify this member to its peers; replica may
// be nil (membership-only overlays, e.g. in unit tests).
func New(ep *rpc.Endpoint, clock vclock.Clock, site string, replAddr netsim.Address, replica Replica, opts ...Option) *Overlay {
	o := &Overlay{
		ep:         ep,
		clock:      clock,
		self:       Peer{Site: site, Addr: ep.Addr(), Repl: replAddr},
		replica:    replica,
		ttl:        DefaultTTL,
		walkTTL:    DefaultWalkTTL,
		interval:   DefaultInterval,
		timeout:    DefaultTimeout,
		quietCap:   DefaultQuietCap,
		failureCap: DefaultFailureCap,
		seed:       1,
		seen:       make(map[uint64]bool),
	}
	for _, opt := range opts {
		opt(o)
	}
	o.rng = rand.New(rand.NewSource(o.seed ^ int64(fnv64(site))))
	o.register()
	return o
}

// Self returns this overlay's own peer identity.
func (o *Overlay) Self() Peer { return o.self }

// Stats snapshots the counters plus the view-size gauges.
func (o *Overlay) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := o.stats
	out.ActiveSize = len(o.active)
	out.PassiveSize = len(o.passive)
	return out
}

// ActiveView returns the current active view, sorted by site.
func (o *Overlay) ActiveView() []Peer {
	o.mu.Lock()
	out := append([]Peer(nil), o.active...)
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// PassiveView returns the current passive view, sorted by site.
func (o *Overlay) PassiveView() []Peer {
	o.mu.Lock()
	out := append([]Peer(nil), o.passive...)
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Close marks the overlay dead: handlers stop mutating state and armed
// rounds fall through. Used when a site crashes.
func (o *Overlay) Close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
}

// activeTarget is the active-view size the overlay stabilizes toward:
// the fixed WithActiveSize, or ⌈log₂ n⌉+2 over the advertised
// membership (minimum 3 — tiny deployments still want redundancy). The
// result is cached so locked code paths (eviction) agree with unlocked
// ones (deficit fill) on the same target — a disagreement would churn
// promote/evict forever.
func (o *Overlay) activeTarget() int {
	if o.activeSize > 0 {
		return o.activeSize
	}
	n := 0
	if o.contacts != nil {
		n = len(o.contacts())
	}
	t := ilog2(n) + 2
	if t < 3 {
		t = 3
	}
	o.mu.Lock()
	o.targetCache = t
	o.mu.Unlock()
	return t
}

func (o *Overlay) passiveTarget() int {
	if o.passiveSize > 0 {
		return o.passiveSize
	}
	return 3*o.activeTarget() + 6
}

// ringOrder lists the advertised membership in ring order starting just
// after self: successors first, then the wrap-around back toward self.
// Index 0 is the true ring successor; later indexes are the fallbacks a
// partition makes ensureRing walk to.
func (o *Overlay) ringOrder() []Peer {
	if o.contacts == nil {
		return nil
	}
	all := o.contacts()
	sort.Slice(all, func(i, j int) bool { return all[i].Site < all[j].Site })
	var after, before []Peer
	for _, p := range all {
		switch {
		case p.Addr == o.self.Addr:
		case p.Site > o.self.Site:
			after = append(after, p)
		default:
			before = append(before, p)
		}
	}
	return append(after, before...)
}

// ringSuccessor is this site's successor on the sorted ring of
// advertised sites — the pinned active-view slot that keeps the overlay
// graph deterministically connected.
func (o *Overlay) ringSuccessor() (Peer, bool) {
	order := o.ringOrder()
	if len(order) == 0 {
		return Peer{}, false
	}
	return order[0], true
}

// Join bootstraps this overlay into the advertised membership: it sends
// gossip.join to a seeded-random advertised contact, adopts the
// contact's view sample, and arms stabilization. The contact is random
// rather than the ring successor on purpose: sites join one at a time,
// and early in a rollout every new site's ring successor wraps to the
// same first site — a hot spot that would accumulate O(n) channels on
// one member. Random contacts spread join load ~ln n per site; the ring
// slot is still pinned by the first stabilization round. A lone first
// site has no contact and simply stays armed for later joiners.
func (o *Overlay) Join() {
	candidates := o.ringOrder()
	if len(candidates) == 0 {
		return
	}
	o.mu.Lock()
	contact := candidates[o.rng.Intn(len(candidates))]
	o.mu.Unlock()
	o.ep.GoJSON(contact.Addr, MethodJoin, joinReq{Joiner: o.self}, func(res rpc.Result) {
		var resp joinResp
		if err := res.Decode(&resp); err != nil {
			// Contact unreachable: stabilization will retry promotion from
			// whatever the trader advertises.
			o.arm(0)
			return
		}
		o.addActive(resp.Me, true)
		for _, p := range resp.Active {
			o.addPassive(p)
		}
		for _, p := range resp.Passive {
			o.addPassive(p)
		}
		o.arm(0)
	}, rpc.CallTimeout(o.timeout))
}

// Mend re-knits the overlay after a partition heals: the ring successor
// is re-pinned (stabilization re-probes demoted peers and refills the
// view from the passive candidates the partition left behind) and rounds
// re-arm even if the overlay went dormant on its failure cap.
func (o *Overlay) Mend() {
	o.mu.Lock()
	o.consecFail = 0
	o.quiet = 0
	o.ringSkip = 0 // re-pin the true successor now the cut is gone
	o.mu.Unlock()
	o.arm(0)
}

// Suspect arms a stabilization round on outside evidence of peer
// failure — the replication layer calls it when a sync round fails, so a
// partition the dormant overlay cannot see still triggers probing,
// demotion of unreachable peers and a ring re-walk. The failure budget
// resets: new evidence deserves a new budget (dormancy re-caps after
// failureCap failing rounds from here).
func (o *Overlay) Suspect() {
	o.mu.Lock()
	o.consecFail = 0
	o.quiet = 0
	o.mu.Unlock()
	o.arm(0)
}

// --- view mutation ---------------------------------------------------------

// indexOf finds addr in a view.
func indexOf(view []Peer, addr netsim.Address) int {
	for i, p := range view {
		if p.Addr == addr {
			return i
		}
	}
	return -1
}

// addActive admits p to the active view, evicting the weakest member to
// the passive view when full (the pinned ring peer and p itself are
// eviction-exempt). pin additionally marks p as the ring successor.
// Fires onChange outside the lock. Returns false if p was already there
// (or is self).
func (o *Overlay) addActive(p Peer, pin bool) bool {
	if p.Addr == o.self.Addr || p.Addr == "" {
		return false
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return false
	}
	if pin {
		o.ring = p.Addr
	}
	if indexOf(o.active, p.Addr) >= 0 {
		o.mu.Unlock()
		return false
	}
	if i := indexOf(o.passive, p.Addr); i >= 0 {
		o.passive = append(o.passive[:i], o.passive[i+1:]...)
	}
	var evicted []Peer
	target := o.activeTargetLocked()
	o.active = append(o.active, p)
	for len(o.active) > target {
		v := o.evictionVictimLocked(p.Addr)
		if v < 0 {
			break
		}
		victim := o.active[v]
		o.active = append(o.active[:v], o.active[v+1:]...)
		o.addPassiveLocked(victim)
		o.stats.Demotions++
		evicted = append(evicted, victim)
	}
	o.viewVersion++
	o.mu.Unlock()
	if o.onChange != nil {
		o.onChange([]Peer{p}, evicted)
	}
	return true
}

// activeTargetLocked is the locked view of activeTarget: it cannot call
// contacts (user code) under the lock, so it reads the cache the last
// activeTarget call left behind.
func (o *Overlay) activeTargetLocked() int {
	if o.activeSize > 0 {
		return o.activeSize
	}
	if o.targetCache > 0 {
		return o.targetCache
	}
	return 3
}

// evictionVictimLocked picks the active member to demote: lowest
// placement bias, site-name tie-break — never the pinned ring successor
// or the just-added peer.
func (o *Overlay) evictionVictimLocked(keep netsim.Address) int {
	best := -1
	for i, p := range o.active {
		if p.Addr == o.ring || p.Addr == keep {
			continue
		}
		if best < 0 || o.rank(p.Site) < o.rank(o.active[best].Site) ||
			(o.rank(p.Site) == o.rank(o.active[best].Site) && p.Site > o.active[best].Site) {
			best = i
		}
	}
	return best
}

func (o *Overlay) rank(site string) int {
	if o.bias == nil {
		return 0
	}
	return o.bias(site)
}

// removeActive drops addr from the active view (probe failure), moving
// it to the passive view so a later heal can promote it back.
func (o *Overlay) removeActive(addr netsim.Address) {
	o.mu.Lock()
	i := indexOf(o.active, addr)
	if i < 0 || o.closed {
		o.mu.Unlock()
		return
	}
	p := o.active[i]
	o.active = append(o.active[:i], o.active[i+1:]...)
	o.addPassiveLocked(p)
	o.stats.Demotions++
	o.viewVersion++
	o.mu.Unlock()
	if o.onChange != nil {
		o.onChange(nil, []Peer{p})
	}
}

// addPassive records p as a known-but-unused peer.
func (o *Overlay) addPassive(p Peer) {
	o.mu.Lock()
	if !o.closed {
		o.addPassiveLocked(p)
	}
	o.mu.Unlock()
}

func (o *Overlay) addPassiveLocked(p Peer) {
	if p.Addr == o.self.Addr || p.Addr == "" {
		return
	}
	if indexOf(o.active, p.Addr) >= 0 || indexOf(o.passive, p.Addr) >= 0 {
		return
	}
	if max := o.passiveTargetLocked(); len(o.passive) >= max {
		// Evict a random passive entry — HyParView's choice; the rng keeps
		// it deterministic per seed.
		o.passive[o.rng.Intn(len(o.passive))] = p
		return
	}
	o.passive = append(o.passive, p)
}

func (o *Overlay) passiveTargetLocked() int {
	if o.passiveSize > 0 {
		return o.passiveSize
	}
	return 3*o.activeTargetLocked() + 6
}

// dropPassive removes a candidate that failed promotion.
func (o *Overlay) dropPassive(addr netsim.Address) {
	o.mu.Lock()
	if i := indexOf(o.passive, addr); i >= 0 {
		o.passive = append(o.passive[:i], o.passive[i+1:]...)
	}
	o.mu.Unlock()
}

// --- stabilization ---------------------------------------------------------

// arm schedules a stabilization round d from now (d < 0: one interval).
// Requests arriving while a round is armed or running are absorbed.
func (o *Overlay) arm(d time.Duration) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.want = true
	if o.armed || o.running {
		o.mu.Unlock()
		return
	}
	o.armed = true
	if d < 0 {
		d = o.interval
	}
	o.mu.Unlock()
	o.clock.AfterFunc(d, o.round)
}

// round runs one stabilization pass: re-pin the ring successor, probe
// the active view, refill it from the passive view, shuffle once — all
// sequentially, so rounds are deterministic.
func (o *Overlay) round() {
	o.activeTarget() // refresh the target cache from the advertised membership
	o.mu.Lock()
	o.armed = false
	if o.running || o.closed {
		o.mu.Unlock()
		return
	}
	o.running = true
	o.want = false
	o.stats.Rounds++
	v0 := o.viewVersion
	failed0 := o.stats.ProbeFailures
	targets := append([]Peer(nil), o.active...)
	o.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].Addr < targets[j].Addr })

	o.ensureRing(func(failures int) {
		o.probeAll(targets, 0, failures, func(failures int) {
			o.fillDeficit(0, failures, func(failures int) {
				o.shuffleOnce(failures, func(failures int) {
					o.roundDone(v0, failed0, failures)
				})
			})
		})
	})
}

// roundDone decides whether to re-arm: an explicit request arrived
// mid-round, the active view changed, or the round failed with failure
// budget remaining. Quiet rounds accumulate toward dormancy.
func (o *Overlay) roundDone(v0 uint64, failed0 int64, failures int) {
	o.mu.Lock()
	o.running = false
	changed := o.viewVersion != v0 || o.stats.ProbeFailures != failed0 || failures > 0
	if failures > 0 || o.stats.ProbeFailures != failed0 {
		o.consecFail++
	} else {
		o.consecFail = 0
	}
	if changed {
		o.quiet = 0
	} else {
		o.quiet++
	}
	rearm := o.want ||
		(changed && o.consecFail < o.failureCap && o.quiet < o.quietCap)
	o.mu.Unlock()
	if rearm {
		o.arm(-1)
	}
}

// ensureRing re-pins the ring successor: if the advertised membership
// names a successor not currently in the active view, ask it to be a
// neighbor. A crashed successor's offer is withdrawn, so the ring heals
// around it; a *partitioned* successor is still advertised, so on
// failure the walk continues to the next site in ring order until a
// reachable one accepts — each partition component thereby forms its own
// ring, which is what keeps convergence deterministic under a cut.
// ringSkip remembers where the last walk succeeded so later rounds skip
// straight past the unreachable prefix; Mend resets it.
func (o *Overlay) ensureRing(done func(failures int)) {
	order := o.ringOrder()
	if len(order) == 0 {
		done(0)
		return
	}
	o.mu.Lock()
	idx := o.ringSkip
	if idx >= len(order) {
		idx = 0
	}
	o.mu.Unlock()
	o.ringWalk(order, idx, 0, done)
}

func (o *Overlay) ringWalk(order []Peer, idx, failures int, done func(failures int)) {
	if idx >= len(order) {
		// Nobody in ring order is reachable; give the failure budget the
		// bad news and let dormancy take over.
		done(failures)
		return
	}
	cand := order[idx]
	o.mu.Lock()
	have := indexOf(o.active, cand.Addr) >= 0
	if have {
		o.ring = cand.Addr
		o.ringSkip = idx
	}
	o.mu.Unlock()
	if have {
		done(failures)
		return
	}
	o.neighbor(cand, true, func(f int) {
		if f == 0 {
			o.mu.Lock()
			o.ringSkip = idx
			o.mu.Unlock()
			done(failures)
			return
		}
		o.ringWalk(order, idx+1, failures+f, done)
	})
}

// neighbor asks p for a symmetric active link; on accept p joins the
// active view (pinned if this is the ring slot).
func (o *Overlay) neighbor(p Peer, pin bool, done func(failures int)) {
	o.ep.GoJSON(p.Addr, MethodNeighbor, neighborReq{From: o.self}, func(res rpc.Result) {
		var resp neighborResp
		if err := res.Decode(&resp); err != nil {
			o.dropPassive(p.Addr)
			done(1)
			return
		}
		if resp.Accepted {
			o.mu.Lock()
			o.stats.Promotions++
			o.mu.Unlock()
			o.addActive(p, pin)
		}
		done(0)
	}, rpc.CallTimeout(o.timeout))
}

// probeAll pings the snapshot of the active view sequentially; a failed
// probe demotes the peer to the passive view (a partitioned peer is a
// future candidate, not a corpse).
func (o *Overlay) probeAll(targets []Peer, i, failures int, done func(failures int)) {
	if i >= len(targets) {
		done(failures)
		return
	}
	p := targets[i]
	o.ep.GoJSON(p.Addr, MethodProbe, probeReq{From: o.self}, func(res rpc.Result) {
		var resp probeResp
		if err := res.Decode(&resp); err != nil {
			o.mu.Lock()
			o.stats.ProbeFailures++
			o.mu.Unlock()
			o.removeActive(p.Addr)
		} else {
			o.mu.Lock()
			o.stats.Probes++
			o.mu.Unlock()
		}
		o.probeAll(targets, i+1, failures, done)
	}, rpc.CallTimeout(o.timeout))
}

// fillDeficit promotes passive candidates (placement bias first) until
// the active view reaches its target, attempting a bounded number per
// round.
func (o *Overlay) fillDeficit(attempts, failures int, done func(failures int)) {
	target := o.activeTarget()
	o.mu.Lock()
	deficit := target - len(o.active)
	if deficit <= 0 || attempts > target || len(o.passive) == 0 || o.closed {
		o.mu.Unlock()
		done(failures)
		return
	}
	// Best candidate: highest bias, site-name tie-break.
	best := 0
	for i, p := range o.passive {
		if o.rank(p.Site) > o.rank(o.passive[best].Site) ||
			(o.rank(p.Site) == o.rank(o.passive[best].Site) && p.Site < o.passive[best].Site) {
			best = i
		}
	}
	cand := o.passive[best]
	o.mu.Unlock()
	o.neighbor(cand, false, func(f int) {
		if f > 0 {
			failures += f
		}
		o.fillDeficit(attempts+1, failures, done)
	})
}

// shuffleOnce exchanges passive-view samples with one random active
// peer.
func (o *Overlay) shuffleOnce(failures int, done func(failures int)) {
	o.mu.Lock()
	if len(o.active) == 0 || o.closed {
		o.mu.Unlock()
		done(failures)
		return
	}
	t := o.active[o.rng.Intn(len(o.active))]
	sample := o.sampleLocked(t.Addr)
	o.mu.Unlock()
	o.ep.GoJSON(t.Addr, MethodShuffle, shuffleReq{From: o.self, Sample: sample}, func(res rpc.Result) {
		var resp shuffleResp
		if err := res.Decode(&resp); err != nil {
			done(failures + 1)
			return
		}
		for _, p := range resp.Sample {
			o.addPassive(p)
		}
		o.mu.Lock()
		o.stats.Shuffles++
		o.mu.Unlock()
		done(failures)
	}, rpc.CallTimeout(o.timeout))
}

// sampleLocked draws up to shuffleLen peers from the union of the views
// (excluding the shuffle partner), self included — what one shuffle
// carries.
func (o *Overlay) sampleLocked(exclude netsim.Address) []Peer {
	pool := make([]Peer, 0, len(o.active)+len(o.passive))
	for _, p := range o.active {
		if p.Addr != exclude {
			pool = append(pool, p)
		}
	}
	for _, p := range o.passive {
		if p.Addr != exclude {
			pool = append(pool, p)
		}
	}
	o.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > shuffleLen-1 {
		pool = pool[:shuffleLen-1]
	}
	return append(pool, o.self)
}

// --- helpers ---------------------------------------------------------------

func ilog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
