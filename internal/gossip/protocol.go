package gossip

import (
	"errors"
	"sort"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// errClosed answers protocol calls that land on a crashed overlay.
var errClosed = errors.New("gossip: overlay closed")

// WireObject is the row wire form rumor fetches carry — the same one the
// anti-entropy and placement protocols use.
type WireObject = information.WireObject

// --- wire types ------------------------------------------------------------

type joinReq struct {
	Joiner Peer `json:"joiner"`
}

// joinResp bootstraps the joiner: the contact's identity plus a sample
// of its views.
type joinResp struct {
	Me      Peer   `json:"me"`
	Active  []Peer `json:"active,omitempty"`
	Passive []Peer `json:"passive,omitempty"`
}

type forwardJoinReq struct {
	Joiner Peer `json:"joiner"`
	TTL    int  `json:"ttl"`
}

type ack struct{}

type neighborReq struct {
	From Peer `json:"from"`
}

type neighborResp struct {
	Accepted bool `json:"accepted"`
}

type shuffleReq struct {
	From   Peer   `json:"from"`
	Sample []Peer `json:"sample"`
}

type shuffleResp struct {
	Sample []Peer `json:"sample"`
}

type probeReq struct {
	From Peer `json:"from"`
}

type probeResp struct {
	OK bool `json:"ok"`
}

// rumorEntry announces one fresh write: enough for the receiver to
// decide whether it needs the row, without shipping the row itself.
type rumorEntry struct {
	ID string         `json:"id"`
	VV vclock.Version `json:"vv"`
}

type rumorReq struct {
	From    Peer         `json:"from"`
	TTL     int          `json:"ttl"`
	Entries []rumorEntry `json:"entries"`
}

type rumorResp struct {
	// Want is how many rumored rows the receiver will pull — observability
	// only; the pull itself is a separate gossip.fetch.
	Want int `json:"want"`
}

type fetchReq struct {
	Site string   `json:"site"`
	IDs  []string `json:"ids"`
}

type fetchResp struct {
	Objects []WireObject `json:"objects,omitempty"`
}

// --- handlers --------------------------------------------------------------

// register installs the overlay protocol. Handlers are pure local
// compute plus scheduled follow-up calls, so the synchronous form is
// safe under the simulated clock.
func (o *Overlay) register() {
	o.ep.MustRegister(MethodJoin, rpc.HandleJSON(func(_ netsim.Address, req joinReq) (joinResp, error) {
		o.mu.Lock()
		o.stats.Joins++
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return joinResp{}, errClosed
		}
		resp := joinResp{Me: o.self, Active: o.ActiveView(), Passive: o.PassiveView()}
		// Admit the joiner and spread it across the overlay so other
		// members (which may be under their active target) can adopt it.
		forwardTo := o.ActiveView()
		o.addActive(req.Joiner, false)
		for _, p := range forwardTo {
			if p.Addr == req.Joiner.Addr {
				continue
			}
			o.ep.GoJSON(p.Addr, MethodForwardJoin, forwardJoinReq{Joiner: req.Joiner, TTL: o.walkTTL},
				func(rpc.Result) {}, rpc.CallTimeout(o.timeout))
		}
		o.arm(0)
		return resp, nil
	}))

	o.ep.MustRegister(MethodForwardJoin, rpc.HandleJSON(func(_ netsim.Address, req forwardJoinReq) (ack, error) {
		o.mu.Lock()
		o.stats.ForwardJoins++
		closed := o.closed
		deficit := len(o.active) < o.activeTargetLocked()
		var walk []Peer
		if !deficit && req.TTL > 0 {
			for _, p := range o.active {
				if p.Addr != req.Joiner.Addr {
					walk = append(walk, p)
				}
			}
		}
		o.mu.Unlock()
		if closed || req.Joiner.Addr == o.self.Addr {
			return ack{}, nil
		}
		if deficit {
			// Room in the active view: adopt the joiner and tell it so.
			o.neighbor(req.Joiner, false, func(int) {})
		} else {
			o.addPassive(req.Joiner)
			if len(walk) > 0 {
				o.mu.Lock()
				next := walk[o.rng.Intn(len(walk))]
				o.mu.Unlock()
				o.ep.GoJSON(next.Addr, MethodForwardJoin, forwardJoinReq{Joiner: req.Joiner, TTL: req.TTL - 1},
					func(rpc.Result) {}, rpc.CallTimeout(o.timeout))
			}
		}
		return ack{}, nil
	}))

	o.ep.MustRegister(MethodNeighbor, rpc.HandleJSON(func(_ netsim.Address, req neighborReq) (neighborResp, error) {
		o.mu.Lock()
		o.stats.Neighbors++
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return neighborResp{}, errClosed
		}
		// Always accept: a symmetric link request outranks the weakest
		// current member (addActive evicts it to passive). Refusals would
		// need the requester to walk candidates, for little gain at the
		// scales the overlay targets.
		o.addActive(req.From, false)
		o.arm(0)
		return neighborResp{Accepted: true}, nil
	}))

	o.ep.MustRegister(MethodShuffle, rpc.HandleJSON(func(_ netsim.Address, req shuffleReq) (shuffleResp, error) {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return shuffleResp{}, errClosed
		}
		o.stats.Shuffles++
		sample := o.sampleLocked(req.From.Addr)
		o.mu.Unlock()
		o.addPassive(req.From)
		for _, p := range req.Sample {
			o.addPassive(p)
		}
		return shuffleResp{Sample: sample}, nil
	}))

	o.ep.MustRegister(MethodProbe, rpc.HandleJSON(func(_ netsim.Address, req probeReq) (probeResp, error) {
		o.mu.Lock()
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return probeResp{}, errClosed
		}
		o.addPassive(req.From)
		return probeResp{OK: true}, nil
	}))

	o.ep.MustRegister(MethodRumor, rpc.HandleJSONCtx(func(_ netsim.Address, tc wire.TraceContext, req rumorReq) (rumorResp, error) {
		return o.handleRumor(tc, req), nil
	}))

	o.ep.MustRegister(MethodFetch, rpc.HandleJSON(func(_ netsim.Address, req fetchReq) (fetchResp, error) {
		if o.replica == nil {
			return fetchResp{}, nil
		}
		return fetchResp{Objects: o.replica.FetchWire(req.Site, req.IDs)}, nil
	}))
}

// --- rumor mongering -------------------------------------------------------

// Publish pushes a rumor for a fresh local write to the active view.
// rank, if non-nil, orders targets by placement interest for this
// object (higher first) — placed peers hear about hot spaces before
// bystanders do.
func (o *Overlay) Publish(id string, vv vclock.Version, rank func(site string) int) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.markSeenLocked(rumorKey(id, vv))
	targets := o.rumorTargetsLocked("", rank)
	o.stats.RumorsPublished++
	o.mu.Unlock()
	// A tagged object's rumor rides the originating write's trace: the
	// publish is an instant span under it and every rumor rpc carries it.
	var tc wire.TraceContext
	if o.tracer.On() {
		if parent, ok := o.objects.Lookup(id); ok {
			o.tracer.Event("gossip.publish", o.self.Site, parent, "",
				observe.Attr{Key: "object", Value: id})
			tc = parent
		}
	}
	o.sendRumor(targets, rumorReq{From: o.self, TTL: o.ttl, Entries: []rumorEntry{{ID: id, VV: vv}}}, tc)
}

// handleRumor processes an incoming rumor. Entries this replica already
// holds are re-forwarded immediately with a decremented TTL; entries it
// lacks are pulled from the sender first and re-forwarded only once the
// rows actually landed — a forwarder must be able to serve the fetches
// its forwarding provokes, otherwise the epidemic dies at the first
// member whose pull raced its push. Entries whose pull fails are not
// re-forwarded; anti-entropy repairs that path.
func (o *Overlay) handleRumor(tc wire.TraceContext, req rumorReq) rumorResp {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return rumorResp{}
	}
	o.stats.RumorsSeen += int64(len(req.Entries))
	var have, want []rumorEntry
	for _, e := range req.Entries {
		k := rumorKey(e.ID, e.VV)
		if o.seen[k] {
			continue
		}
		o.markSeenLocked(k)
		if o.replica != nil && !o.replica.HasSeen(e.ID, e.VV) {
			want = append(want, e)
		} else {
			have = append(have, e)
		}
	}
	if len(want) > 0 {
		o.stats.RumorFetches++
	}
	o.mu.Unlock()
	o.addPassive(req.From)
	o.forwardRumor(have, req.TTL, req.From.Addr)
	if len(want) > 0 {
		ids := make([]string, len(want))
		for i, e := range want {
			ids[i] = e.ID
		}
		sort.Strings(ids)
		// The fetch continues the rumor's trace: tc is the serve-span
		// context of the incoming gossip.rumor rpc (zero when untraced).
		o.ep.GoJSON(req.From.Addr, MethodFetch, fetchReq{Site: o.self.Site, IDs: ids}, func(res rpc.Result) {
			var resp fetchResp
			if err := res.Decode(&resp); err != nil || o.replica == nil {
				return
			}
			got := make(map[string]bool, len(resp.Objects))
			for _, obj := range resp.Objects {
				got[obj.ID] = true
			}
			if applied := o.replica.ApplyWire(resp.Objects); applied > 0 {
				o.mu.Lock()
				o.stats.RumorApplied += int64(applied)
				o.mu.Unlock()
				// Arm anti-entropy: the sync layer floods what the rumor
				// seeded to peers the rumor itself missed.
				o.replica.SyncSoon()
			}
			var landed []rumorEntry
			for _, e := range want {
				if got[e.ID] {
					landed = append(landed, e)
				}
			}
			o.forwardRumor(landed, req.TTL, req.From.Addr)
		}, rpc.CallTimeout(o.timeout), rpc.CallTrace(tc))
	}
	return rumorResp{Want: len(want)}
}

// forwardRumor re-forwards entries this member can vouch for (it holds
// the rows) to the active view, excluding the peer they came from.
func (o *Overlay) forwardRumor(entries []rumorEntry, ttl int, from netsim.Address) {
	if len(entries) == 0 || ttl <= 0 {
		return
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	targets := o.rumorTargetsLocked(from, nil)
	if len(targets) > 0 {
		o.stats.RumorsForwarded++
	}
	o.mu.Unlock()
	if len(targets) > 0 {
		// A single-entry batch can keep riding its write's trace; mixed
		// batches have no one parent and go untraced.
		var tc wire.TraceContext
		if len(entries) == 1 && o.tracer.On() {
			if parent, ok := o.objects.Lookup(entries[0].ID); ok {
				o.tracer.Event("gossip.forward", o.self.Site, parent, "",
					observe.Attr{Key: "object", Value: entries[0].ID})
				tc = parent
			}
		}
		o.sendRumor(targets, rumorReq{From: o.self, TTL: ttl - 1, Entries: entries}, tc)
	}
}

// rumorTargetsLocked picks the peers one rumor goes to: the active view
// minus the sender, ordered by rank (placement interest) then site, cut
// to the fanout (0 = the whole view).
func (o *Overlay) rumorTargetsLocked(exclude netsim.Address, rank func(site string) int) []Peer {
	out := make([]Peer, 0, len(o.active))
	for _, p := range o.active {
		if p.Addr != exclude {
			out = append(out, p)
		}
	}
	score := func(site string) int {
		if rank != nil {
			return rank(site)
		}
		return o.rank(site)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := score(out[i].Site), score(out[j].Site); a != b {
			return a > b
		}
		return out[i].Site < out[j].Site
	})
	if o.fanout > 0 && len(out) > o.fanout {
		out = out[:o.fanout]
	}
	return out
}

func (o *Overlay) sendRumor(targets []Peer, req rumorReq, tc wire.TraceContext) {
	for _, p := range targets {
		o.ep.GoJSON(p.Addr, MethodRumor, req, func(rpc.Result) {
			// Losing a rumor is fine: anti-entropy is the repair path.
		}, rpc.CallTimeout(o.timeout), rpc.CallTrace(tc))
	}
}

// markSeenLocked records a rumor key, resetting the set at its cap —
// a reset only costs re-forwarding already-quiet rumors once.
func (o *Overlay) markSeenLocked(k uint64) {
	if len(o.seen) >= seenCap {
		o.seen = make(map[uint64]bool)
	}
	o.seen[k] = true
}

// rumorKey folds an id and version vector into the dedup key.
func rumorKey(id string, vv vclock.Version) uint64 {
	h := fnv64(id)
	for _, b := range vv.AppendBinary(nil) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
