package groupware

import (
	"strings"
	"testing"
	"time"

	"mocca/internal/core"
	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/vclock"
)

type gwFixture struct {
	clk    *vclock.Simulated
	net    *netsim.Network
	env    *core.Environment
	server *rtc.Server
	mta    *mhs.MTA
}

func newGWFixture(t *testing.T) *gwFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(41))
	env := core.New(clk)
	mcuEP := rpc.NewEndpoint(net.MustAddNode("mcu"), clk)
	server := rtc.NewServer(mcuEP, clk)
	mtaEP := rpc.NewEndpoint(net.MustAddNode("mta"), clk)
	mta := mhs.NewMTA("mta-gmd", "gmd.de", mtaEP, clk)
	return &gwFixture{clk: clk, net: net, env: env, server: server, mta: mta}
}

func (f *gwFixture) drive(t *testing.T, op func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		case <-deadline:
			t.Fatal("simulated op did not complete")
		default:
			time.Sleep(200 * time.Microsecond)
			f.clk.Advance(10 * time.Millisecond)
		}
	}
}

func (f *gwFixture) session(t *testing.T, node, conf, member string) *rtc.Session {
	t.Helper()
	ep := rpc.NewEndpoint(f.net.MustAddNode(netsim.Address(node)), f.clk)
	return rtc.NewSession(ep, f.clk, "mcu", conf, member)
}

func TestAllQuadrantsRegister(t *testing.T) {
	f := newGWFixture(t)
	if _, err := NewMeetingRoom(f.env, f.server); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDesktopConference(f.env, f.server); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTeamRoom(f.env, "birlinghoven-lab"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMessageSystem(f.env); err != nil {
		t.Fatal(err)
	}
	quads := f.env.Quadrants()
	if len(quads) != 4 {
		t.Fatalf("environment hosts %d quadrants, want all 4: %v", len(quads), quads)
	}
}

func TestMeetingRoomMinutes(t *testing.T) {
	f := newGWFixture(t)
	room, err := NewMeetingRoom(f.env, f.server)
	if err != nil {
		t.Fatal(err)
	}
	scribe := f.session(t, "room-terminal", room.ConferenceID(), "scribe")
	f.drive(t, scribe.Join)
	f.drive(t, func() error { _, err := scribe.RequestFloor(); return err })
	f.drive(t, func() error { return scribe.Set("agenda-1", "review models") })
	f.drive(t, func() error { return scribe.Set("agenda-2", "odp mapping") })
	f.clk.RunUntilIdle()

	minutes, err := room.PublishMinutes("scribe", "weekly sync")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(minutes.Fields["notes"], "agenda-1 = review models") {
		t.Fatalf("minutes = %q", minutes.Fields["notes"])
	}
}

func TestDesktopConferenceDocument(t *testing.T) {
	f := newGWFixture(t)
	conf, err := NewDesktopConference(f.env, f.server)
	if err != nil {
		t.Fatal(err)
	}
	a := f.session(t, "site-a", conf.ConferenceID(), "ada")
	b := f.session(t, "site-b", conf.ConferenceID(), "ben")
	f.drive(t, a.Join)
	f.drive(t, b.Join)
	f.drive(t, func() error { return a.Set("para-1", "introduction") })
	f.drive(t, func() error { return b.Set("para-2", "requirements") })
	f.clk.RunUntilIdle()

	doc, err := conf.SaveDocument("ada", "position-paper")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Fields["contents"], "para-1: introduction") ||
		!strings.Contains(doc.Fields["contents"], "para-2: requirements") {
		t.Fatalf("document = %q", doc.Fields["contents"])
	}
}

func TestTeamRoomShiftHandover(t *testing.T) {
	f := newGWFixture(t)
	room, err := NewTeamRoom(f.env, "control-room")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := room.Post("nightshift-lead", "night", "TBM stopped", "bearing temperature high"); err != nil {
		t.Fatal(err)
	}
	if _, err := room.Post("nightshift-lead", "night", "visitor log", "inspection at 03:00"); err != nil {
		t.Fatal(err)
	}
	// The next (day) shift reads the board in the same room, later.
	f.clk.Advance(8 * time.Hour)
	notes, err := room.Board("night")
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 2 {
		t.Fatalf("board has %d notes", len(notes))
	}
	all, err := room.Board("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("all notes = %d", len(all))
	}
}

func TestMessageSystemThreading(t *testing.T) {
	f := newGWFixture(t)
	ms, err := NewMessageSystem(f.env)
	if err != nil {
		t.Fatal(err)
	}
	prinz := mhs.NewUserAgent(mhs.MustParseORName("pn=prinz;o=gmd;c=de"), f.mta)
	klaus := mhs.NewUserAgent(mhs.MustParseORName("pn=klaus;o=gmd;c=de"), f.mta)

	if _, err := ms.Post(prinz, []mhs.ORName{klaus.Name}, "models", "draft ready", "please review"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	if _, err := ms.Post(klaus, []mhs.ORName{prinz.Name}, "models", "re: draft ready", "looks good"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()

	// MHS delivered both.
	if klaus.Unread() != 1 || prinz.Unread() != 1 {
		t.Fatalf("unread: klaus=%d prinz=%d", klaus.Unread(), prinz.Unread())
	}
	// The thread is visible to its participants via the space mirror.
	thread, err := ms.Thread("prinz", "models")
	if err != nil {
		t.Fatal(err)
	}
	if len(thread) != 1 { // prinz sees his own post; klaus's is unshared
		t.Fatalf("prinz sees %d thread messages", len(thread))
	}
}

func TestCrossQuadrantInterop(t *testing.T) {
	// The headline openness property: minutes written in the co-located
	// meeting room are readable by the remote message system, because
	// both registered with the environment.
	f := newGWFixture(t)
	room, err := NewMeetingRoom(f.env, f.server)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMessageSystem(f.env); err != nil {
		t.Fatal(err)
	}
	scribe := f.session(t, "room-terminal", room.ConferenceID(), "scribe")
	f.drive(t, scribe.Join)
	f.drive(t, func() error { _, err := scribe.RequestFloor(); return err })
	f.drive(t, func() error { return scribe.Set("decision", "ship v1") })
	f.clk.RunUntilIdle()

	minutes, err := room.PublishMinutes("scribe", "release meeting")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.env.Space().Share("scribe", minutes.ID, "klaus", false); err != nil {
		t.Fatal(err)
	}
	asMessage, err := f.env.ShareAcross("klaus", minutes.ID, "message-system")
	if err != nil {
		t.Fatal(err)
	}
	if asMessage.Fields["subject"] != "release meeting" {
		t.Fatalf("converted = %+v", asMessage.Fields)
	}
	if !strings.Contains(asMessage.Fields["text"], "decision = ship v1") {
		t.Fatalf("converted body = %q", asMessage.Fields["text"])
	}
}
