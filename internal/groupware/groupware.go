// Package groupware provides four small but complete CSCW applications,
// one per cell of the paper's figure-1 time-space matrix:
//
//	same time / same place           MeetingRoom        (COLAB-style [10])
//	same time / different place      DesktopConference  (Shared X-style [6])
//	different time / same place      TeamRoom           (shift handover board)
//	different time / different place MessageSystem      (Object-Lens-style [7])
//
// Each application registers with the CSCW environment (figure 3) and
// works only through environment services — which is exactly what makes
// them open: any of them can read the others' artefacts via the shared
// information model.
package groupware

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mocca/internal/core"
	"mocca/internal/information"
	"mocca/internal/mhs"
	"mocca/internal/rtc"
)

// Env is the environment face an application binds to: the global
// *core.Environment, or a site's *core.SiteEnv so that the application
// instance works against that site's information replica (writes land
// locally and replicate asynchronously). Registration is global either
// way — schemas are shared across sites.
type Env interface {
	RegisterApplication(core.Application) error
	Space() *information.Space
}

// Quadrant names used in Application registrations.
const (
	QuadrantSameTimeSamePlace = "same-time/same-place"
	QuadrantSameTimeDiffPlace = "same-time/different-place"
	QuadrantDiffTimeSamePlace = "different-time/same-place"
	QuadrantDiffTimeDiffPlace = "different-time/different-place"
)

// Quadrants lists all four in matrix order.
func Quadrants() []string {
	return []string{
		QuadrantSameTimeSamePlace,
		QuadrantSameTimeDiffPlace,
		QuadrantDiffTimeSamePlace,
		QuadrantDiffTimeDiffPlace,
	}
}

// renameFields builds a field-mapping converter.
func renameFields(mapping map[string]string) func(map[string]string) (map[string]string, error) {
	return func(in map[string]string) (map[string]string, error) {
		out := make(map[string]string, len(in))
		for k, v := range in {
			if nk, ok := mapping[k]; ok {
				out[nk] = v
			}
		}
		return out, nil
	}
}

// --- MeetingRoom (same time, same place) ---------------------------------

// MeetingRoom is a co-located electronic meeting room: one shared display
// (an rtc conference whose members all sit on the same node), plus minutes
// published into the information space when the meeting closes.
type MeetingRoom struct {
	env    Env
	server *rtc.Server
	conf   string
}

// NewMeetingRoom registers the application and opens its room conference.
func NewMeetingRoom(env Env, server *rtc.Server) (*MeetingRoom, error) {
	app := core.Application{
		Name:     "meeting-room",
		Quadrant: QuadrantSameTimeSamePlace,
		Schema: information.Schema{Name: "meeting-minutes", Fields: []information.Field{
			{Name: "topic", Type: information.FieldText, Required: true},
			{Name: "notes", Type: information.FieldText},
			{Name: "scribe", Type: information.FieldText},
		}},
		ToShared:   renameFields(map[string]string{"topic": "title", "notes": "body", "scribe": "author"}),
		FromShared: renameFields(map[string]string{"title": "topic", "body": "notes", "author": "scribe"}),
	}
	if err := env.RegisterApplication(app); err != nil {
		return nil, err
	}
	cid, err := server.CreateConference("meeting-room", rtc.ModeFloor)
	if err != nil {
		return nil, err
	}
	return &MeetingRoom{env: env, server: server, conf: cid}, nil
}

// ConferenceID returns the room's conference id for sessions to join.
func (m *MeetingRoom) ConferenceID() string { return m.conf }

// PublishMinutes renders the room history into a minutes object owned by
// the scribe.
func (m *MeetingRoom) PublishMinutes(scribe, topic string) (*information.Object, error) {
	history, err := m.server.History(m.conf)
	if err != nil {
		return nil, err
	}
	var notes strings.Builder
	for _, ev := range history {
		if ev.Kind == rtc.EventState {
			fmt.Fprintf(&notes, "%s: %s = %s\n", ev.From, ev.Key, ev.Value)
		}
	}
	return m.env.Space().Put(scribe, "meeting-minutes", map[string]string{
		"topic":  topic,
		"notes":  notes.String(),
		"scribe": scribe,
	})
}

// --- DesktopConference (same time, different place) ----------------------

// DesktopConference is a Shared-X-style remote conference: members join
// from their own nodes; WYSIWIS state is the shared document.
type DesktopConference struct {
	env    Env
	server *rtc.Server
	conf   string
}

// NewDesktopConference registers the application and opens a conference.
func NewDesktopConference(env Env, server *rtc.Server) (*DesktopConference, error) {
	app := core.Application{
		Name:     "desktop-conference",
		Quadrant: QuadrantSameTimeDiffPlace,
		Schema: information.Schema{Name: "conf-document", Fields: []information.Field{
			{Name: "name", Type: information.FieldText, Required: true},
			{Name: "contents", Type: information.FieldText},
			{Name: "editor", Type: information.FieldText},
		}},
		ToShared:   renameFields(map[string]string{"name": "title", "contents": "body", "editor": "author"}),
		FromShared: renameFields(map[string]string{"title": "name", "body": "contents", "author": "editor"}),
	}
	if err := env.RegisterApplication(app); err != nil {
		return nil, err
	}
	cid, err := server.CreateConference("desktop-conference", rtc.ModeOpen)
	if err != nil {
		return nil, err
	}
	return &DesktopConference{env: env, server: server, conf: cid}, nil
}

// ConferenceID returns the conference id for sessions to join.
func (d *DesktopConference) ConferenceID() string { return d.conf }

// SaveDocument snapshots the conference state into the information space.
func (d *DesktopConference) SaveDocument(owner, name string) (*information.Object, error) {
	history, err := d.server.History(d.conf)
	if err != nil {
		return nil, err
	}
	state := map[string]string{}
	for _, ev := range history {
		if ev.Kind == rtc.EventState {
			state[ev.Key] = ev.Value
		}
	}
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var contents strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&contents, "%s: %s\n", k, state[k])
	}
	return d.env.Space().Put(owner, "conf-document", map[string]string{
		"name":     name,
		"contents": contents.String(),
		"editor":   owner,
	})
}

// --- TeamRoom (different time, same place) --------------------------------

// TeamRoom is a shift-handover board in a shared physical space: notes are
// posted by one shift and read by the next — same place, different times.
type TeamRoom struct {
	env  Env
	name string
}

// NewTeamRoom registers the application.
func NewTeamRoom(env Env, name string) (*TeamRoom, error) {
	app := core.Application{
		Name:     "team-room",
		Quadrant: QuadrantDiffTimeSamePlace,
		Schema: information.Schema{Name: "shift-note", Fields: []information.Field{
			{Name: "headline", Type: information.FieldText, Required: true},
			{Name: "detail", Type: information.FieldText},
			{Name: "shift", Type: information.FieldText},
			{Name: "poster", Type: information.FieldText},
		}},
		ToShared:   renameFields(map[string]string{"headline": "title", "detail": "body", "poster": "author"}),
		FromShared: renameFields(map[string]string{"title": "headline", "body": "detail", "author": "poster"}),
	}
	if err := env.RegisterApplication(app); err != nil {
		return nil, err
	}
	return &TeamRoom{env: env, name: name}, nil
}

// Post pins a note to the board, readable by everyone in the room: the
// poster shares it with the board's room principal so later shifts can
// query it.
func (tr *TeamRoom) Post(poster, shift, headline, detail string) (*information.Object, error) {
	obj, err := tr.env.Space().Put(poster, "shift-note", map[string]string{
		"headline": headline,
		"detail":   detail,
		"shift":    shift,
		"poster":   poster,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.env.Space().Share(poster, obj.ID, "room:"+tr.name, false); err != nil {
		return nil, err
	}
	return obj, nil
}

// Board lists notes visible in the room, optionally for one shift.
func (tr *TeamRoom) Board(shift string) ([]*information.Object, error) {
	filter := map[string]string{}
	if shift != "" {
		filter["shift"] = shift
	}
	return tr.env.Space().Query("room:"+tr.name, "shift-note", filter)
}

// --- MessageSystem (different time, different place) ----------------------

// MessageSystem is an Object-Lens-style structured-message application on
// the MHS: conversations are threads of typed messages.
type MessageSystem struct {
	env Env
}

// NewMessageSystem registers the application.
func NewMessageSystem(env Env) (*MessageSystem, error) {
	app := core.Application{
		Name:     "message-system",
		Quadrant: QuadrantDiffTimeDiffPlace,
		Schema: information.Schema{Name: "structured-message", Fields: []information.Field{
			{Name: "subject", Type: information.FieldText, Required: true},
			{Name: "text", Type: information.FieldText},
			{Name: "sender", Type: information.FieldText},
			{Name: "thread", Type: information.FieldText},
		}},
		ToShared:   renameFields(map[string]string{"subject": "title", "text": "body", "sender": "author"}),
		FromShared: renameFields(map[string]string{"title": "subject", "body": "text", "author": "sender"}),
	}
	if err := env.RegisterApplication(app); err != nil {
		return nil, err
	}
	return &MessageSystem{env: env}, nil
}

// ErrNoThread reports an unknown conversation thread.
var ErrNoThread = errors.New("groupware: unknown thread")

// Post sends a structured message through the MHS and mirrors it into the
// information space for cross-application access.
func (ms *MessageSystem) Post(ua *mhs.UserAgent, to []mhs.ORName, thread, subject, text string) (string, error) {
	msgID, err := ua.Send(to, subject, text, mhs.WithHeader("thread", thread))
	if err != nil {
		return "", err
	}
	_, err = ms.env.Space().Put(ua.Name.Personal, "structured-message", map[string]string{
		"subject": subject,
		"text":    text,
		"sender":  ua.Name.Personal,
		"thread":  thread,
	})
	if err != nil {
		return "", err
	}
	return msgID, nil
}

// Thread lists the mirrored messages of a conversation in posting order.
func (ms *MessageSystem) Thread(reader, thread string) ([]*information.Object, error) {
	return ms.env.Space().Query(reader, "structured-message", map[string]string{"thread": thread})
}
