// Package activity implements the paper's Inter-activity Model. Rather
// than imposing one representation of activities, it provides the services
// §4 enumerates — "managing the membership of activities, sharing resources
// between activities, scheduling activities and monitoring the progress of
// activities, mechanisms for negotiating the responsibility for activities,
// mechanisms for negotiating the division of competence within activities,
// coordination of activities" — and it represents the dependencies BETWEEN
// activities that the model is named for (temporal relationships, common
// resources, shared information).
package activity

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mocca/internal/id"
	"mocca/internal/vclock"
)

// State is an activity's lifecycle state.
type State int

// Lifecycle states.
const (
	StateProposed State = iota + 1
	StateActive
	StateSuspended
	StateCompleted
	StateCancelled
)

var stateNames = map[State]string{
	StateProposed:  "proposed",
	StateActive:    "active",
	StateSuspended: "suspended",
	StateCompleted: "completed",
	StateCancelled: "cancelled",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// terminal reports whether no further transitions are allowed.
func (s State) terminal() bool { return s == StateCompleted || s == StateCancelled }

// validTransitions encodes the lifecycle state machine.
var validTransitions = map[State][]State{
	StateProposed:  {StateActive, StateCancelled},
	StateActive:    {StateSuspended, StateCompleted, StateCancelled},
	StateSuspended: {StateActive, StateCancelled},
}

// DepKind is an inter-activity dependency kind.
type DepKind string

// Dependency kinds, mirroring §3's inter-relations: "activities may use
// common resources, may share common information, can have well-defined
// temporal relationships".
const (
	// DepFinishStart: the target must complete before the source starts.
	DepFinishStart DepKind = "finish-start"
	// DepSharesResource: both activities use a common resource.
	DepSharesResource DepKind = "shares-resource"
	// DepSharesInfo: both activities share information objects.
	DepSharesInfo DepKind = "shares-information"
)

// Dependency is a typed edge between activities.
type Dependency struct {
	From string
	Kind DepKind
	To   string
	// Detail names the shared resource/information where applicable.
	Detail string
}

// Activity is one cooperative activity.
type Activity struct {
	ID          string
	Name        string
	Goal        string
	State       State
	Coordinator string            // principal responsible for the activity
	Members     map[string]string // principal -> activity role
	Resources   []string          // org resource ids in use
	InfoObjects []string          // information object ids in use
	Progress    int               // 0..100
	Deadline    time.Time         // zero = open-ended (the paper: "some
	// have well defined goals and fixed deadlines while others are
	// on-going")
	Created time.Time
	Updated time.Time
}

// clone deep-copies the activity.
func (a *Activity) clone() *Activity {
	out := *a
	out.Members = make(map[string]string, len(a.Members))
	for k, v := range a.Members {
		out.Members[k] = v
	}
	out.Resources = append([]string(nil), a.Resources...)
	out.InfoObjects = append([]string(nil), a.InfoObjects...)
	return &out
}

// Errors of the activity model.
var (
	ErrUnknownActivity = errors.New("activity: unknown activity")
	ErrBadTransition   = errors.New("activity: invalid state transition")
	ErrNotMember       = errors.New("activity: not a member")
	ErrDepCycle        = errors.New("activity: dependency cycle")
	ErrBlocked         = errors.New("activity: predecessors incomplete")
)

// EventKind discriminates registry events.
type EventKind string

// Event kinds.
const (
	EventCreated    EventKind = "created"
	EventTransition EventKind = "transition"
	EventJoined     EventKind = "joined"
	EventLeft       EventKind = "left"
	EventProgress   EventKind = "progress"
	EventUnblocked  EventKind = "unblocked"
	EventHandover   EventKind = "handover"
)

// Event notifies subscribers of activity changes.
type Event struct {
	Kind     EventKind
	Activity *Activity
	Actor    string
	Detail   string
	At       time.Time
}

// Registry is the activity store and coordination engine.
type Registry struct {
	clock vclock.Clock
	ids   *id.Generator

	mu    sync.RWMutex
	acts  map[string]*Activity
	deps  []Dependency
	subs  []func(Event)
	negs  map[string]*Negotiation
	stats Stats
}

// Stats counts registry activity.
type Stats struct {
	Created      int64
	Transitions  int64
	Joins        int64
	Handovers    int64
	Negotiations int64
}

// Option configures a Registry.
type Option func(*Registry)

// WithIDs sets the id generator.
func WithIDs(g *id.Generator) Option {
	return func(r *Registry) { r.ids = g }
}

// NewRegistry creates an empty registry.
func NewRegistry(clock vclock.Clock, opts ...Option) *Registry {
	r := &Registry{
		clock: clock,
		acts:  make(map[string]*Activity),
		negs:  make(map[string]*Negotiation),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.ids == nil {
		r.ids = id.New()
	}
	return r
}

// Subscribe registers an event callback (synchronous, must not block).
func (r *Registry) Subscribe(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, fn)
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// Create proposes a new activity coordinated by the actor, who becomes its
// first member with the "coordinator" role.
func (r *Registry) Create(actor, name, goal string) (*Activity, error) {
	now := r.clock.Now()
	a := &Activity{
		ID:          r.ids.Next("act"),
		Name:        name,
		Goal:        goal,
		State:       StateProposed,
		Coordinator: actor,
		Members:     map[string]string{actor: "coordinator"},
		Created:     now,
		Updated:     now,
	}
	r.mu.Lock()
	r.acts[a.ID] = a
	r.stats.Created++
	snapshot := a.clone()
	r.mu.Unlock()
	r.notify(Event{Kind: EventCreated, Activity: snapshot, Actor: actor, At: now})
	return snapshot, nil
}

// Get returns a copy of the activity.
func (r *Registry) Get(actID string) (*Activity, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.acts[actID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	return a.clone(), nil
}

// List returns copies of all activities, sorted by id.
func (r *Registry) List() []*Activity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Activity, 0, len(r.acts))
	for _, a := range r.acts {
		out = append(out, a.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Transition moves the activity to a new state, enforcing the lifecycle
// and — for activation — finish-start dependencies.
func (r *Registry) Transition(actor, actID string, to State) error {
	r.mu.Lock()
	a, ok := r.acts[actID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	allowed := false
	for _, next := range validTransitions[a.State] {
		if next == to {
			allowed = true
			break
		}
	}
	if !allowed {
		from := a.State
		r.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrBadTransition, from, to)
	}
	if to == StateActive && a.State == StateProposed {
		if blocked := r.incompletePredecessorsLocked(actID); len(blocked) > 0 {
			r.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrBlocked, blocked)
		}
	}
	a.State = to
	if to == StateCompleted {
		a.Progress = 100
	}
	a.Updated = r.clock.Now()
	r.stats.Transitions++
	snapshot := a.clone()
	r.mu.Unlock()

	r.notify(Event{Kind: EventTransition, Activity: snapshot, Actor: actor, Detail: to.String(), At: snapshot.Updated})
	if to == StateCompleted {
		r.unblockSuccessors(actID)
	}
	return nil
}

// incompletePredecessorsLocked lists finish-start predecessors not yet
// completed.
func (r *Registry) incompletePredecessorsLocked(actID string) []string {
	var out []string
	for _, d := range r.deps {
		if d.From == actID && d.Kind == DepFinishStart {
			if pred, ok := r.acts[d.To]; ok && pred.State != StateCompleted {
				out = append(out, d.To)
			}
		}
	}
	sort.Strings(out)
	return out
}

// unblockSuccessors emits EventUnblocked for activities whose last
// incomplete predecessor just completed.
func (r *Registry) unblockSuccessors(completed string) {
	r.mu.RLock()
	var candidates []string
	for _, d := range r.deps {
		if d.To == completed && d.Kind == DepFinishStart {
			candidates = append(candidates, d.From)
		}
	}
	r.mu.RUnlock()
	for _, cid := range candidates {
		r.mu.RLock()
		blocked := r.incompletePredecessorsLocked(cid)
		a, ok := r.acts[cid]
		var snapshot *Activity
		if ok {
			snapshot = a.clone()
		}
		r.mu.RUnlock()
		if ok && len(blocked) == 0 && snapshot.State == StateProposed {
			r.notify(Event{Kind: EventUnblocked, Activity: snapshot, At: r.clock.Now()})
		}
	}
}

// Join adds a member with a role ("" defaults to "participant").
func (r *Registry) Join(actID, principal, role string) error {
	if role == "" {
		role = "participant"
	}
	r.mu.Lock()
	a, ok := r.acts[actID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	a.Members[principal] = role
	a.Updated = r.clock.Now()
	r.stats.Joins++
	snapshot := a.clone()
	r.mu.Unlock()
	r.notify(Event{Kind: EventJoined, Activity: snapshot, Actor: principal, Detail: role, At: snapshot.Updated})
	return nil
}

// Leave removes a member; the coordinator cannot leave (hand over first).
func (r *Registry) Leave(actID, principal string) error {
	r.mu.Lock()
	a, ok := r.acts[actID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	if _, ok := a.Members[principal]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotMember, principal)
	}
	if a.Coordinator == principal {
		r.mu.Unlock()
		return fmt.Errorf("activity: coordinator %q must hand over before leaving", principal)
	}
	delete(a.Members, principal)
	a.Updated = r.clock.Now()
	snapshot := a.clone()
	r.mu.Unlock()
	r.notify(Event{Kind: EventLeft, Activity: snapshot, Actor: principal, At: snapshot.Updated})
	return nil
}

// SetProgress records progress (clamped to 0..100); members only.
func (r *Registry) SetProgress(actor, actID string, progress int) error {
	if progress < 0 {
		progress = 0
	}
	if progress > 100 {
		progress = 100
	}
	r.mu.Lock()
	a, ok := r.acts[actID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	if _, ok := a.Members[actor]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotMember, actor)
	}
	a.Progress = progress
	a.Updated = r.clock.Now()
	snapshot := a.clone()
	r.mu.Unlock()
	r.notify(Event{Kind: EventProgress, Activity: snapshot, Actor: actor, Detail: fmt.Sprintf("%d", progress), At: snapshot.Updated})
	return nil
}

// SetDeadline schedules the activity's deadline.
func (r *Registry) SetDeadline(actID string, deadline time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.acts[actID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	a.Deadline = deadline
	return nil
}

// UseResource records that the activity uses an organisational resource,
// and materialises shares-resource dependencies with other activities
// already using it.
func (r *Registry) UseResource(actID, resourceID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.acts[actID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	for _, res := range a.Resources {
		if res == resourceID {
			return nil
		}
	}
	a.Resources = append(a.Resources, resourceID)
	for _, other := range r.acts {
		if other.ID == actID {
			continue
		}
		for _, res := range other.Resources {
			if res == resourceID {
				r.addDepLocked(Dependency{From: actID, Kind: DepSharesResource, To: other.ID, Detail: resourceID})
				r.addDepLocked(Dependency{From: other.ID, Kind: DepSharesResource, To: actID, Detail: resourceID})
			}
		}
	}
	return nil
}

// UseInfoObject records shared information use, materialising
// shares-information dependencies.
func (r *Registry) UseInfoObject(actID, objID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.acts[actID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	for _, o := range a.InfoObjects {
		if o == objID {
			return nil
		}
	}
	a.InfoObjects = append(a.InfoObjects, objID)
	for _, other := range r.acts {
		if other.ID == actID {
			continue
		}
		for _, o := range other.InfoObjects {
			if o == objID {
				r.addDepLocked(Dependency{From: actID, Kind: DepSharesInfo, To: other.ID, Detail: objID})
				r.addDepLocked(Dependency{From: other.ID, Kind: DepSharesInfo, To: actID, Detail: objID})
			}
		}
	}
	return nil
}

// DependOn records a finish-start dependency: from cannot start until to
// completes. Temporal dependencies must stay acyclic.
func (r *Registry) DependOn(from, to string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.acts[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, from)
	}
	if _, ok := r.acts[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, to)
	}
	if from == to || r.temporalReachableLocked(to, from) {
		return fmt.Errorf("%w: %s -> %s", ErrDepCycle, from, to)
	}
	r.addDepLocked(Dependency{From: from, Kind: DepFinishStart, To: to})
	return nil
}

func (r *Registry) addDepLocked(d Dependency) {
	for _, existing := range r.deps {
		if existing == d {
			return
		}
	}
	r.deps = append(r.deps, d)
}

// temporalReachableLocked walks finish-start edges from start looking for
// target. Edge From -> To means From waits on To; a path to->...->from
// would close a cycle.
func (r *Registry) temporalReachableLocked(start, target string) bool {
	seen := map[string]bool{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for _, d := range r.deps {
			if d.From == cur && d.Kind == DepFinishStart {
				queue = append(queue, d.To)
			}
		}
	}
	return false
}

// Dependencies returns dependencies out of the activity (all kinds),
// sorted.
func (r *Registry) Dependencies(actID string) []Dependency {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Dependency
	for _, d := range r.deps {
		if d.From == actID {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].To < out[j].To
	})
	return out
}

// Schedule returns activity ids in a start order respecting finish-start
// dependencies (prerequisites first). Stable for equal ranks (by id).
func (r *Registry) Schedule() ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Kahn's algorithm over From-waits-on-To edges.
	indeg := make(map[string]int, len(r.acts))
	for aid := range r.acts {
		indeg[aid] = 0
	}
	succ := make(map[string][]string)
	for _, d := range r.deps {
		if d.Kind != DepFinishStart {
			continue
		}
		// To must come before From.
		succ[d.To] = append(succ[d.To], d.From)
		indeg[d.From]++
	}
	var ready []string
	for aid, n := range indeg {
		if n == 0 {
			ready = append(ready, aid)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		out = append(out, cur)
		added := false
		for _, nxt := range succ[cur] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				ready = append(ready, nxt)
				added = true
			}
		}
		if added {
			sort.Strings(ready)
		}
	}
	if len(out) != len(r.acts) {
		return nil, fmt.Errorf("%w: %d of %d schedulable", ErrDepCycle, len(out), len(r.acts))
	}
	return out, nil
}

// Overdue lists activities past their deadline and not yet terminal.
func (r *Registry) Overdue() []*Activity {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Activity
	for _, a := range r.acts {
		if !a.Deadline.IsZero() && now.After(a.Deadline) && !a.State.terminal() {
			out = append(out, a.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) notify(ev Event) {
	r.mu.RLock()
	subs := make([]func(Event), len(r.subs))
	copy(subs, r.subs)
	r.mu.RUnlock()
	for _, fn := range subs {
		fn(ev)
	}
}
