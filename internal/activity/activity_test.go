package activity

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

func newRegistry(t *testing.T) (*Registry, *vclock.Simulated) {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	return NewRegistry(clk), clk
}

func TestLifecycle(t *testing.T) {
	r, _ := newRegistry(t)
	a, err := r.Create("ada", "progress meetings", "weekly review")
	if err != nil {
		t.Fatal(err)
	}
	if a.State != StateProposed || a.Coordinator != "ada" {
		t.Fatalf("created = %+v", a)
	}
	steps := []State{StateActive, StateSuspended, StateActive, StateCompleted}
	for _, s := range steps {
		if err := r.Transition("ada", a.ID, s); err != nil {
			t.Fatalf("to %s: %v", s, err)
		}
	}
	got, _ := r.Get(a.ID)
	if got.State != StateCompleted || got.Progress != 100 {
		t.Fatalf("final = %+v", got)
	}
	// Terminal state: no further transitions.
	if err := r.Transition("ada", a.ID, StateActive); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("transition from terminal: %v", err)
	}
}

func TestInvalidTransitions(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "x", "")
	if err := r.Transition("ada", a.ID, StateSuspended); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("proposed->suspended: %v", err)
	}
	if err := r.Transition("ada", a.ID, StateCompleted); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("proposed->completed: %v", err)
	}
	if err := r.Transition("ada", "ghost", StateActive); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("ghost: %v", err)
	}
}

func TestMembership(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "reports", "")
	if err := r.Join(a.ID, "ben", "author"); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(a.ID, "carol", ""); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(a.ID)
	if len(got.Members) != 3 || got.Members["ben"] != "author" || got.Members["carol"] != "participant" {
		t.Fatalf("members = %v", got.Members)
	}
	if err := r.Leave(a.ID, "ben"); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave(a.ID, "ben"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double leave: %v", err)
	}
	// Coordinator cannot leave without handover.
	if err := r.Leave(a.ID, "ada"); err == nil {
		t.Fatal("coordinator left without handover")
	}
}

func TestProgressMembersOnly(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "x", "")
	if err := r.SetProgress("stranger", a.ID, 50); !errors.Is(err, ErrNotMember) {
		t.Fatalf("stranger progress: %v", err)
	}
	if err := r.SetProgress("ada", a.ID, 150); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(a.ID)
	if got.Progress != 100 {
		t.Fatalf("progress clamped to %d", got.Progress)
	}
}

func TestFinishStartBlocksActivation(t *testing.T) {
	r, _ := newRegistry(t)
	design, _ := r.Create("ada", "design", "")
	build, _ := r.Create("ada", "build", "")
	if err := r.DependOn(build.ID, design.ID); err != nil {
		t.Fatal(err)
	}
	// build cannot start while design is incomplete.
	if err := r.Transition("ada", build.ID, StateActive); !errors.Is(err, ErrBlocked) {
		t.Fatalf("blocked activation: %v", err)
	}
	if err := r.Transition("ada", design.ID, StateActive); err != nil {
		t.Fatal(err)
	}
	if err := r.Transition("ada", design.ID, StateCompleted); err != nil {
		t.Fatal(err)
	}
	if err := r.Transition("ada", build.ID, StateActive); err != nil {
		t.Fatalf("activation after prerequisite completed: %v", err)
	}
}

func TestUnblockedEvent(t *testing.T) {
	r, _ := newRegistry(t)
	var unblocked []string
	r.Subscribe(func(ev Event) {
		if ev.Kind == EventUnblocked {
			unblocked = append(unblocked, ev.Activity.Name)
		}
	})
	design, _ := r.Create("ada", "design", "")
	build, _ := r.Create("ada", "build", "")
	review, _ := r.Create("ada", "review", "")
	_ = r.DependOn(build.ID, design.ID)
	_ = r.DependOn(build.ID, review.ID)
	_ = r.Transition("ada", design.ID, StateActive)
	_ = r.Transition("ada", design.ID, StateCompleted)
	if len(unblocked) != 0 {
		t.Fatalf("unblocked too early: %v", unblocked)
	}
	_ = r.Transition("ada", review.ID, StateActive)
	_ = r.Transition("ada", review.ID, StateCompleted)
	if len(unblocked) != 1 || unblocked[0] != "build" {
		t.Fatalf("unblocked = %v", unblocked)
	}
}

func TestDependencyCycleRejected(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("x", "a", "")
	b, _ := r.Create("x", "b", "")
	c, _ := r.Create("x", "c", "")
	if err := r.DependOn(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.DependOn(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.DependOn(c.ID, a.ID); !errors.Is(err, ErrDepCycle) {
		t.Fatalf("cycle: %v", err)
	}
	if err := r.DependOn(a.ID, a.ID); !errors.Is(err, ErrDepCycle) {
		t.Fatalf("self-dep: %v", err)
	}
}

func TestSharedResourceDependency(t *testing.T) {
	r, _ := newRegistry(t)
	boring, _ := r.Create("ada", "boring", "")
	lining, _ := r.Create("ben", "lining", "")
	if err := r.UseResource(boring.ID, "tbm-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.UseResource(lining.ID, "tbm-1"); err != nil {
		t.Fatal(err)
	}
	deps := r.Dependencies(lining.ID)
	if len(deps) != 1 || deps[0].Kind != DepSharesResource || deps[0].To != boring.ID || deps[0].Detail != "tbm-1" {
		t.Fatalf("deps = %v", deps)
	}
	// Symmetric edge exists too.
	back := r.Dependencies(boring.ID)
	if len(back) != 1 || back[0].To != lining.ID {
		t.Fatalf("back deps = %v", back)
	}
}

func TestSharedInfoDependency(t *testing.T) {
	r, _ := newRegistry(t)
	write, _ := r.Create("ada", "write-report", "")
	review, _ := r.Create("ben", "review-report", "")
	_ = r.UseInfoObject(write.ID, "info-report-1")
	_ = r.UseInfoObject(review.ID, "info-report-1")
	deps := r.Dependencies(write.ID)
	if len(deps) != 1 || deps[0].Kind != DepSharesInfo {
		t.Fatalf("deps = %v", deps)
	}
}

func TestSchedule(t *testing.T) {
	r, _ := newRegistry(t)
	// survey <- design <- build; report independent.
	survey, _ := r.Create("x", "survey", "")
	design, _ := r.Create("x", "design", "")
	build, _ := r.Create("x", "build", "")
	report, _ := r.Create("x", "report", "")
	_ = r.DependOn(design.ID, survey.ID)
	_ = r.DependOn(build.ID, design.ID)

	order, err := r.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, aid := range order {
		pos[aid] = i
	}
	if !(pos[survey.ID] < pos[design.ID] && pos[design.ID] < pos[build.ID]) {
		t.Fatalf("order = %v", order)
	}
	if _, ok := pos[report.ID]; !ok {
		t.Fatal("independent activity missing from schedule")
	}
}

func TestOverdue(t *testing.T) {
	r, clk := newRegistry(t)
	a, _ := r.Create("ada", "deliverable", "")
	_ = r.SetDeadline(a.ID, clk.Now().Add(24*time.Hour))
	if got := r.Overdue(); len(got) != 0 {
		t.Fatalf("overdue too early: %v", got)
	}
	clk.Advance(25 * time.Hour)
	got := r.Overdue()
	if len(got) != 1 || got[0].ID != a.ID {
		t.Fatalf("overdue = %v", got)
	}
	// Completed activities are never overdue.
	_ = r.Transition("ada", a.ID, StateActive)
	_ = r.Transition("ada", a.ID, StateCompleted)
	if got := r.Overdue(); len(got) != 0 {
		t.Fatalf("completed listed overdue: %v", got)
	}
}

func TestResponsibilityNegotiation(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "x", "")
	_ = r.Join(a.ID, "ben", "")

	neg, err := r.Propose("ada", a.ID, NegResponsibility, "ben", "")
	if err != nil {
		t.Fatal(err)
	}
	// Only the responder may answer.
	if _, err := r.Accept("ada", neg.ID); !errors.Is(err, ErrNotResponder) {
		t.Fatalf("proposer accepted own proposal: %v", err)
	}
	if _, err := r.Accept("ben", neg.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(a.ID)
	if got.Coordinator != "ben" || got.Members["ben"] != "coordinator" || got.Members["ada"] != "participant" {
		t.Fatalf("after handover = %+v", got)
	}
	// Closed negotiations cannot be re-answered.
	if _, err := r.Accept("ben", neg.ID); !errors.Is(err, ErrNegotiationClosed) {
		t.Fatalf("double accept: %v", err)
	}
	// Now ada can leave.
	if err := r.Leave(a.ID, "ada"); err != nil {
		t.Fatal(err)
	}
}

func TestCompetenceNegotiation(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "report", "")
	_ = r.Join(a.ID, "ben", "")
	neg, err := r.Propose("ada", a.ID, NegCompetence, "ben", "statistics-chapter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept("ben", neg.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(a.ID)
	if got.Members["ben"] != "competent:statistics-chapter" {
		t.Fatalf("competence not recorded: %v", got.Members)
	}
}

func TestDeclineAndWithdraw(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "x", "")
	_ = r.Join(a.ID, "ben", "")

	neg, _ := r.Propose("ada", a.ID, NegResponsibility, "ben", "")
	if _, err := r.Decline("ben", neg.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(a.ID)
	if got.Coordinator != "ada" {
		t.Fatal("declined negotiation changed coordinator")
	}

	neg2, _ := r.Propose("ada", a.ID, NegResponsibility, "ben", "")
	if _, err := r.Withdraw("ben", neg2.ID); !errors.Is(err, ErrNotProposer) {
		t.Fatalf("responder withdrew: %v", err)
	}
	if _, err := r.Withdraw("ada", neg2.ID); err != nil {
		t.Fatal(err)
	}
	negs := r.Negotiations(a.ID)
	if len(negs) != 2 || negs[0].State != NegDeclined || negs[1].State != NegWithdrawn {
		t.Fatalf("negotiations = %+v", negs)
	}
}

func TestProposeRequiresMembers(t *testing.T) {
	r, _ := newRegistry(t)
	a, _ := r.Create("ada", "x", "")
	if _, err := r.Propose("ada", a.ID, NegResponsibility, "stranger", ""); !errors.Is(err, ErrNotMember) {
		t.Fatalf("propose to stranger: %v", err)
	}
	if _, err := r.Propose("stranger", a.ID, NegResponsibility, "ada", ""); !errors.Is(err, ErrNotMember) {
		t.Fatalf("propose by stranger: %v", err)
	}
}

func TestEventStream(t *testing.T) {
	r, _ := newRegistry(t)
	var kinds []EventKind
	r.Subscribe(func(ev Event) { kinds = append(kinds, ev.Kind) })
	a, _ := r.Create("ada", "x", "")
	_ = r.Join(a.ID, "ben", "")
	_ = r.Transition("ada", a.ID, StateActive)
	_ = r.SetProgress("ben", a.ID, 40)
	_ = r.Leave(a.ID, "ben")
	want := fmt.Sprint([]EventKind{EventCreated, EventJoined, EventTransition, EventProgress, EventLeft})
	if fmt.Sprint(kinds) != want {
		t.Fatalf("events = %v", kinds)
	}
}

func TestScheduleManyActivities(t *testing.T) {
	r, _ := newRegistry(t)
	// A chain of 100 activities must schedule in chain order.
	var ids []string
	for i := 0; i < 100; i++ {
		a, _ := r.Create("x", fmt.Sprintf("a%02d", i), "")
		ids = append(ids, a.ID)
		if i > 0 {
			if err := r.DependOn(a.ID, ids[i-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	order, err := r.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, aid := range order {
		pos[aid] = i
	}
	for i := 1; i < len(ids); i++ {
		if pos[ids[i-1]] > pos[ids[i]] {
			t.Fatalf("chain order violated at %d", i)
		}
	}
}
