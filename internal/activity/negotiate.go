package activity

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// NegotiationKind distinguishes what is being negotiated, per §4:
// "mechanisms for negotiating the responsibility for activities" and
// "mechanisms for negotiating the division of competence within
// activities".
type NegotiationKind string

// Negotiation kinds.
const (
	// NegResponsibility proposes handing activity coordination to another
	// member.
	NegResponsibility NegotiationKind = "responsibility"
	// NegCompetence proposes assigning a competence area (a named slice
	// of the work) to a member.
	NegCompetence NegotiationKind = "competence"
)

// NegotiationState is the protocol state.
type NegotiationState int

// Negotiation states.
const (
	NegPending NegotiationState = iota + 1
	NegAccepted
	NegDeclined
	NegWithdrawn
)

// String implements fmt.Stringer.
func (s NegotiationState) String() string {
	switch s {
	case NegPending:
		return "pending"
	case NegAccepted:
		return "accepted"
	case NegDeclined:
		return "declined"
	case NegWithdrawn:
		return "withdrawn"
	default:
		return fmt.Sprintf("negstate(%d)", int(s))
	}
}

// Negotiation is a two-party proposal with accept/decline/withdraw moves —
// deliberately minimal, the neutral mechanism the paper asks for rather
// than a full speech-act model.
type Negotiation struct {
	ID       string
	Activity string
	Kind     NegotiationKind
	From     string // proposer
	To       string // responder
	// Competence names the proposed division of work (NegCompetence).
	Competence string
	State      NegotiationState
	Opened     time.Time
	Closed     time.Time
}

// clone copies the negotiation.
func (n *Negotiation) clone() *Negotiation {
	out := *n
	return &out
}

// Errors of the negotiation protocol.
var (
	ErrUnknownNegotiation = errors.New("activity: unknown negotiation")
	ErrNegotiationClosed  = errors.New("activity: negotiation already closed")
	ErrNotResponder       = errors.New("activity: only the responder may answer")
	ErrNotProposer        = errors.New("activity: only the proposer may withdraw")
)

// Propose opens a negotiation from actor to responder. Both must be
// members of the activity.
func (r *Registry) Propose(actor, actID string, kind NegotiationKind, responder, competence string) (*Negotiation, error) {
	r.mu.Lock()
	a, ok := r.acts[actID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownActivity, actID)
	}
	if _, ok := a.Members[actor]; !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: proposer %q", ErrNotMember, actor)
	}
	if _, ok := a.Members[responder]; !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: responder %q", ErrNotMember, responder)
	}
	n := &Negotiation{
		ID:         r.ids.Next("neg"),
		Activity:   actID,
		Kind:       kind,
		From:       actor,
		To:         responder,
		Competence: competence,
		State:      NegPending,
		Opened:     r.clock.Now(),
	}
	r.negs[n.ID] = n
	r.stats.Negotiations++
	out := n.clone()
	r.mu.Unlock()
	return out, nil
}

// Accept closes the negotiation positively and applies its effect:
// responsibility negotiations hand over coordination; competence
// negotiations record the competence as the responder's role annotation.
func (r *Registry) Accept(actor, negID string) (*Negotiation, error) {
	r.mu.Lock()
	n, ok := r.negs[negID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownNegotiation, negID)
	}
	if n.State != NegPending {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNegotiationClosed, n.State)
	}
	if n.To != actor {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotResponder, actor)
	}
	n.State = NegAccepted
	n.Closed = r.clock.Now()

	a := r.acts[n.Activity]
	var ev Event
	switch n.Kind {
	case NegResponsibility:
		a.Coordinator = n.To
		a.Members[n.To] = "coordinator"
		if n.From != n.To {
			a.Members[n.From] = "participant"
		}
		r.stats.Handovers++
		ev = Event{Kind: EventHandover, Activity: a.clone(), Actor: n.To, Detail: "responsibility", At: n.Closed}
	case NegCompetence:
		a.Members[n.To] = "competent:" + n.Competence
		ev = Event{Kind: EventHandover, Activity: a.clone(), Actor: n.To, Detail: "competence:" + n.Competence, At: n.Closed}
	}
	a.Updated = n.Closed
	out := n.clone()
	r.mu.Unlock()

	r.notify(ev)
	return out, nil
}

// Decline closes the negotiation negatively; no effect is applied.
func (r *Registry) Decline(actor, negID string) (*Negotiation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.negs[negID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNegotiation, negID)
	}
	if n.State != NegPending {
		return nil, fmt.Errorf("%w: %s", ErrNegotiationClosed, n.State)
	}
	if n.To != actor {
		return nil, fmt.Errorf("%w: %q", ErrNotResponder, actor)
	}
	n.State = NegDeclined
	n.Closed = r.clock.Now()
	return n.clone(), nil
}

// Withdraw closes a pending negotiation from the proposer's side.
func (r *Registry) Withdraw(actor, negID string) (*Negotiation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.negs[negID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNegotiation, negID)
	}
	if n.State != NegPending {
		return nil, fmt.Errorf("%w: %s", ErrNegotiationClosed, n.State)
	}
	if n.From != actor {
		return nil, fmt.Errorf("%w: %q", ErrNotProposer, actor)
	}
	n.State = NegWithdrawn
	n.Closed = r.clock.Now()
	return n.clone(), nil
}

// Negotiations returns negotiations involving the activity, sorted by id.
func (r *Registry) Negotiations(actID string) []*Negotiation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Negotiation
	for _, n := range r.negs {
		if n.Activity == actID {
			out = append(out, n.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
