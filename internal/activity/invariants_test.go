package activity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

// TestQuickScheduleIsTopological: for random DAGs of finish-start
// dependencies, Schedule always emits every activity with prerequisites
// first.
func TestQuickScheduleIsTopological(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.NewSimulated(netsim.DefaultEpoch)
		reg := NewRegistry(clk)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			a, err := reg.Create("x", "", "")
			if err != nil {
				return false
			}
			ids[i] = a.ID
		}
		// Random edges only from later to earlier indices keeps the DAG
		// acyclic by construction: later activities wait on earlier ones.
		deps := map[string][]string{}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if rng.Intn(4) == 0 {
					if err := reg.DependOn(ids[i], ids[j]); err != nil {
						return false
					}
					deps[ids[i]] = append(deps[ids[i]], ids[j])
				}
			}
		}
		order, err := reg.Schedule()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for from, tos := range deps {
			for _, to := range tos {
				if pos[to] > pos[from] {
					return false // prerequisite scheduled after dependent
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCycleAlwaysRejected: adding any edge that closes a directed
// cycle is refused, for random chains.
func TestQuickCycleAlwaysRejected(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		n := int(sizeRaw%10) + 2
		clk := vclock.NewSimulated(netsim.DefaultEpoch)
		reg := NewRegistry(clk)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			a, err := reg.Create("x", "", "")
			if err != nil {
				return false
			}
			ids[i] = a.ID
			if i > 0 {
				if err := reg.DependOn(ids[i], ids[i-1]); err != nil {
					return false
				}
			}
		}
		// Any back edge from an earlier to a later element closes a cycle.
		return reg.DependOn(ids[0], ids[n-1]) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
