package trader

import (
	"time"

	"mocca/internal/directory"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/wire"
)

// RPC method names exposed by a trading service.
const (
	MethodExport   = "trader.export"
	MethodWithdraw = "trader.withdraw"
	MethodImport   = "trader.import"
	MethodRegType  = "trader.regtype"
)

// federationBudget bounds each peer sub-query so a dead peer degrades the
// result instead of consuming the whole client timeout.
const federationBudget = 800 * time.Millisecond

// WireOffer is the JSON-safe form of an Offer.
type WireOffer struct {
	ID          string               `json:"id"`
	ServiceType string               `json:"serviceType"`
	Provider    string               `json:"provider"`
	Properties  directory.Attributes `json:"properties,omitempty"`
}

func toWire(o Offer) WireOffer {
	return WireOffer{
		ID:          o.ID,
		ServiceType: o.ServiceType,
		Provider:    string(o.Provider),
		Properties:  o.Properties,
	}
}

func fromWire(w WireOffer) Offer {
	props := w.Properties
	if props == nil {
		props = make(directory.Attributes)
	}
	return Offer{
		ID:          w.ID,
		ServiceType: w.ServiceType,
		Provider:    netsim.Address(w.Provider),
		Properties:  props,
	}
}

type exportReq struct {
	Offer WireOffer `json:"offer"`
}

type withdrawReq struct {
	OfferID string `json:"offerId"`
}

type importReq struct {
	ServiceType string `json:"serviceType"`
	Constraint  string `json:"constraint,omitempty"`
	MaxOffers   int    `json:"maxOffers,omitempty"`
	OrderBy     string `json:"orderBy,omitempty"`
	Importer    string `json:"importer,omitempty"`
	Hops        int    `json:"hops,omitempty"`
}

type importResp struct {
	Offers []WireOffer `json:"offers"`
}

type regTypeReq struct {
	Name       string   `json:"name"`
	Supertypes []string `json:"supertypes,omitempty"`
}

type okResp struct {
	OK bool `json:"ok"`
}

// Server exposes a Trader over rpc and installs a network Forwarder so
// federation links traverse the simulated network.
type Server struct {
	trader   *Trader
	endpoint *rpc.Endpoint
}

// NewServer binds the trader to the endpoint and installs an asynchronous
// network forwarder so federated queries traverse the simulated network
// without blocking the event loop.
func NewServer(endpoint *rpc.Endpoint, t *Trader) *Server {
	s := &Server{trader: t, endpoint: endpoint}
	t.SetAsyncForwarder(func(peer netsim.Address, req ImportRequest, done func([]Offer, error)) {
		endpoint.GoJSON(peer, MethodImport, importReq{
			ServiceType: req.ServiceType,
			Constraint:  req.Constraint,
			MaxOffers:   req.MaxOffers,
			OrderBy:     req.OrderBy,
			Importer:    req.Importer,
			Hops:        req.Hops,
		}, func(r rpc.Result) {
			var resp importResp
			if err := r.Decode(&resp); err != nil {
				done(nil, err)
				return
			}
			out := make([]Offer, 0, len(resp.Offers))
			for _, w := range resp.Offers {
				out = append(out, fromWire(w))
			}
			done(out, nil)
		}, rpc.CallTimeout(federationBudget))
	})
	s.register()
	return s
}

// Trader returns the underlying trading function.
func (s *Server) Trader() *Trader { return s.trader }

func (s *Server) register() {
	s.endpoint.MustRegister(MethodExport, rpc.HandleJSON(func(_ netsim.Address, req exportReq) (okResp, error) {
		if err := s.trader.Export(fromWire(req.Offer)); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegister(MethodWithdraw, rpc.HandleJSON(func(_ netsim.Address, req withdrawReq) (okResp, error) {
		if err := s.trader.Withdraw(req.OfferID); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegister(MethodRegType, rpc.HandleJSON(func(_ netsim.Address, req regTypeReq) (okResp, error) {
		if err := s.trader.RegisterType(req.Name, req.Supertypes...); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	s.endpoint.MustRegisterAsync(MethodImport, func(r rpc.Request, reply func([]byte, error)) {
		var req importReq
		if len(r.Body) > 0 {
			if err := wire.DecodeBody(r.Body, &req); err != nil {
				reply(nil, err)
				return
			}
		}
		importer := req.Importer
		if importer == "" {
			importer = string(r.From)
		}
		s.trader.ImportAsync(ImportRequest{
			ServiceType: req.ServiceType,
			Constraint:  req.Constraint,
			MaxOffers:   req.MaxOffers,
			OrderBy:     req.OrderBy,
			Importer:    importer,
			Hops:        req.Hops,
		}, func(offers []Offer, err error) {
			if err != nil {
				reply(nil, err)
				return
			}
			resp := importResp{}
			for _, o := range offers {
				resp.Offers = append(resp.Offers, toWire(o))
			}
			body, merr := wire.EncodeBody(resp)
			reply(body, merr)
		})
	})
}

// importVia queries a remote trader synchronously over rpc.
func importVia(ep *rpc.Endpoint, peer netsim.Address, req ImportRequest) ([]Offer, error) {
	var resp importResp
	err := ep.CallJSON(peer, MethodImport, importReq{
		ServiceType: req.ServiceType,
		Constraint:  req.Constraint,
		MaxOffers:   req.MaxOffers,
		OrderBy:     req.OrderBy,
		Importer:    req.Importer,
		Hops:        req.Hops,
	}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]Offer, 0, len(resp.Offers))
	for _, w := range resp.Offers {
		out = append(out, fromWire(w))
	}
	return out, nil
}

// Client wraps the importer/exporter side of the trading protocol.
type Client struct {
	endpoint *rpc.Endpoint
	trader   netsim.Address
}

// NewClient returns a client bound to the trader at addr.
func NewClient(endpoint *rpc.Endpoint, trader netsim.Address) *Client {
	return &Client{endpoint: endpoint, trader: trader}
}

// RegisterType declares a service type remotely.
func (c *Client) RegisterType(name string, supertypes ...string) error {
	var resp okResp
	return c.endpoint.CallJSON(c.trader, MethodRegType, regTypeReq{Name: name, Supertypes: supertypes}, &resp)
}

// Export registers an offer remotely.
func (c *Client) Export(o Offer) error {
	var resp okResp
	return c.endpoint.CallJSON(c.trader, MethodExport, exportReq{Offer: toWire(o)}, &resp)
}

// Withdraw removes an offer remotely.
func (c *Client) Withdraw(offerID string) error {
	var resp okResp
	return c.endpoint.CallJSON(c.trader, MethodWithdraw, withdrawReq{OfferID: offerID}, &resp)
}

// Import queries the trader.
func (c *Client) Import(req ImportRequest) ([]Offer, error) {
	return importVia(c.endpoint, c.trader, req)
}
