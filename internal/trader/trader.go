// Package trader implements the ODP trading function: service providers
// export offers describing typed services with properties; importers query
// for offers matching a service type and a constraint expression.
//
// Section 6.1 of the paper proposes that "the organisational knowledge base
// considered in the Mocca environment will be associated to the trader,
// containing or dictating among other the trading policy" — so this trader
// accepts pluggable admission policies consulted on every import, and the
// org model installs one (see internal/org).
//
// Traders federate: a trader may hold links to peer traders and forward
// queries with a hop limit, modelling interworking between organisations'
// trading domains.
package trader

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mocca/internal/directory"
	"mocca/internal/netsim"
)

// Offer is an exported service offer.
type Offer struct {
	ID          string
	ServiceType string
	// Provider is the address an importer invokes to use the service.
	Provider netsim.Address
	// Properties describe the offer; constraints match against them.
	Properties directory.Attributes
}

// clone deep-copies the offer.
func (o Offer) clone() Offer {
	out := o
	if o.Properties != nil {
		out.Properties = o.Properties.Clone()
	}
	return out
}

// ImportRequest is a trader query.
type ImportRequest struct {
	// ServiceType to match; subtypes of it also match.
	ServiceType string
	// Constraint is a directory filter string over offer properties;
	// empty means all offers of the type.
	Constraint string
	// MaxOffers caps the result; zero means all.
	MaxOffers int
	// OrderBy names a property to sort descending by (numeric-aware);
	// empty keeps offer-id order.
	OrderBy string
	// Importer identifies who is asking, for policy decisions.
	Importer string
	// hops guards federated forwarding.
	Hops int
}

// Policy vets offers per-import: it may exclude an offer for this importer.
// Policies implement the paper's "trading policy dictated by the
// organisational knowledge base".
type Policy interface {
	// Admit reports whether the importer may see the offer.
	Admit(importer string, offer Offer) bool
	// Name identifies the policy in diagnostics.
	Name() string
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc struct {
	ID string
	Fn func(importer string, offer Offer) bool
}

// Admit implements Policy.
func (p PolicyFunc) Admit(importer string, offer Offer) bool { return p.Fn(importer, offer) }

// Name implements Policy.
func (p PolicyFunc) Name() string { return p.ID }

// Errors returned by the trader.
var (
	ErrUnknownType  = errors.New("trader: unknown service type")
	ErrUnknownOffer = errors.New("trader: unknown offer")
	ErrTypeExists   = errors.New("trader: service type already registered")
	ErrCycle        = errors.New("trader: service type cycle")
)

// MaxFederationHops bounds query forwarding across trader links.
const MaxFederationHops = 4

// Forwarder forwards an import request to a federated peer trader and
// returns its offers synchronously. Only safe for in-process links (tests,
// co-located traders); network forwarding must use AsyncForwarder.
type Forwarder func(peer netsim.Address, req ImportRequest) ([]Offer, error)

// AsyncForwarder forwards an import request to a federated peer and
// delivers the peer's offers through done (called exactly once). The rpc
// server installs a network-backed async forwarder so federation never
// blocks the event loop.
type AsyncForwarder func(peer netsim.Address, req ImportRequest, done func([]Offer, error))

// Trader is a trading function instance. Use New.
type Trader struct {
	mu       sync.RWMutex
	types    map[string][]string // type -> direct supertypes
	offers   map[string]Offer
	byType   map[string]map[string]bool // type -> offer ids
	policies []Policy
	links    []netsim.Address
	forward  Forwarder
	aforward AsyncForwarder
	stats    Stats
}

// Stats counts trader activity.
type Stats struct {
	Exports   int64
	Withdraws int64
	Imports   int64
	Matched   int64
	Excluded  int64 // offers vetoed by policy
	Forwarded int64 // queries sent to federated peers
}

// New creates an empty trader.
func New() *Trader {
	return &Trader{
		types:  make(map[string][]string),
		offers: make(map[string]Offer),
		byType: make(map[string]map[string]bool),
	}
}

// RegisterType declares a service type with optional supertypes. An offer
// of a subtype satisfies imports of any (transitive) supertype.
func (t *Trader) RegisterType(name string, supertypes ...string) error {
	name = strings.ToLower(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.types[name]; ok {
		return fmt.Errorf("%w: %q", ErrTypeExists, name)
	}
	for _, s := range supertypes {
		if _, ok := t.types[strings.ToLower(s)]; !ok {
			return fmt.Errorf("%w: supertype %q", ErrUnknownType, s)
		}
	}
	lowered := make([]string, len(supertypes))
	for i, s := range supertypes {
		lowered[i] = strings.ToLower(s)
	}
	t.types[name] = lowered
	return nil
}

// HasType reports whether the service type is registered.
func (t *Trader) HasType(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.types[strings.ToLower(name)]
	return ok
}

// conformsLocked reports whether sub is the same as or a transitive subtype
// of super.
func (t *Trader) conformsLocked(sub, super string) bool {
	if sub == super {
		return true
	}
	seen := map[string]bool{}
	stack := []string{sub}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == super {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, t.types[cur]...)
	}
	return false
}

// Export registers an offer and returns nothing; the caller supplies the
// offer ID (typically from the id generator) so exports are idempotent at
// higher layers.
func (t *Trader) Export(o Offer) error {
	st := strings.ToLower(o.ServiceType)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.types[st]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownType, o.ServiceType)
	}
	o.ServiceType = st
	if o.Properties == nil {
		o.Properties = make(directory.Attributes)
	}
	t.offers[o.ID] = o.clone()
	if t.byType[st] == nil {
		t.byType[st] = make(map[string]bool)
	}
	t.byType[st][o.ID] = true
	t.stats.Exports++
	return nil
}

// Withdraw removes an offer.
func (t *Trader) Withdraw(offerID string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.offers[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
	}
	delete(t.offers, offerID)
	delete(t.byType[o.ServiceType], offerID)
	t.stats.Withdraws++
	return nil
}

// ModifyOffer replaces the properties of an existing offer.
func (t *Trader) ModifyOffer(offerID string, props directory.Attributes) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.offers[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
	}
	o.Properties = props.Clone()
	t.offers[offerID] = o
	return nil
}

// AddPolicy installs an admission policy; all policies must admit an offer
// for it to be returned.
func (t *Trader) AddPolicy(p Policy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.policies = append(t.policies, p)
}

// LinkPeer federates this trader with a peer trader reachable at addr.
func (t *Trader) LinkPeer(addr netsim.Address) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links = append(t.links, addr)
}

// SetForwarder installs the synchronous transport used to query federated
// peers (in-process links only).
func (t *Trader) SetForwarder(f Forwarder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.forward = f
}

// SetAsyncForwarder installs the asynchronous transport used to query
// federated peers over the network.
func (t *Trader) SetAsyncForwarder(f AsyncForwarder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aforward = f
}

// Stats returns a snapshot of the counters.
func (t *Trader) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// Len returns the number of live offers.
func (t *Trader) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.offers)
}

// matchLocal evaluates the request against local offers only.
func (t *Trader) matchLocal(req ImportRequest) ([]Offer, error) {
	st := strings.ToLower(req.ServiceType)
	var constraint directory.Filter
	if req.Constraint != "" {
		var err error
		constraint, err = directory.ParseFilter(req.Constraint)
		if err != nil {
			return nil, err
		}
	}

	t.mu.Lock()
	t.stats.Imports++
	if _, ok := t.types[st]; !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, req.ServiceType)
	}
	// Collect local candidates: offers whose type conforms to the request.
	var local []Offer
	for typ, ids := range t.byType {
		if !t.conformsLocked(typ, st) {
			continue
		}
		for oid := range ids {
			local = append(local, t.offers[oid].clone())
		}
	}
	policies := append([]Policy(nil), t.policies...)
	t.mu.Unlock()

	var out []Offer
	for _, o := range local {
		if constraint != nil && !constraint.Matches(o.Properties) {
			continue
		}
		admitted := true
		for _, p := range policies {
			if !p.Admit(req.Importer, o) {
				admitted = false
				break
			}
		}
		if !admitted {
			t.mu.Lock()
			t.stats.Excluded++
			t.mu.Unlock()
			continue
		}
		out = append(out, o)
	}
	return out, nil
}

// finalize dedupes, orders, and truncates a combined result set.
func (t *Trader) finalize(req ImportRequest, offers []Offer) []Offer {
	offers = dedupeOffers(offers)
	sortOffers(offers, req.OrderBy)
	if req.MaxOffers > 0 && len(offers) > req.MaxOffers {
		offers = offers[:req.MaxOffers]
	}
	t.mu.Lock()
	t.stats.Matched += int64(len(offers))
	t.mu.Unlock()
	return offers
}

// Import answers a query with matching offers, consulting policies and —
// when a synchronous Forwarder is installed — federated peers. Use
// ImportAsync when federation crosses the network.
func (t *Trader) Import(req ImportRequest) ([]Offer, error) {
	out, err := t.matchLocal(req)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	links := append([]netsim.Address(nil), t.links...)
	forward := t.forward
	t.mu.Unlock()

	if forward != nil && req.Hops < MaxFederationHops {
		fwd := req
		fwd.Hops++
		for _, peer := range links {
			t.mu.Lock()
			t.stats.Forwarded++
			t.mu.Unlock()
			peerOffers, err := forward(peer, fwd)
			if err != nil {
				continue // unreachable peers degrade, not fail, the query
			}
			out = append(out, peerOffers...)
		}
	}
	return t.finalize(req, out), nil
}

// ImportAsync answers a query, fanning out to federated peers through the
// AsyncForwarder, and calls done exactly once with the combined result. It
// never blocks, so it is safe to call from inside network event handlers.
func (t *Trader) ImportAsync(req ImportRequest, done func([]Offer, error)) {
	out, err := t.matchLocal(req)
	if err != nil {
		done(nil, err)
		return
	}
	t.mu.Lock()
	links := append([]netsim.Address(nil), t.links...)
	aforward := t.aforward
	t.mu.Unlock()

	if aforward == nil || req.Hops >= MaxFederationHops || len(links) == 0 {
		done(t.finalize(req, out), nil)
		return
	}

	fwd := req
	fwd.Hops++
	// Aggregate peer replies; outstanding is only touched from event
	// callbacks, guarded by agg.mu for safety under a real clock.
	agg := &importAggregator{trader: t, req: req, offers: out, outstanding: len(links), done: done}
	for _, peer := range links {
		t.mu.Lock()
		t.stats.Forwarded++
		t.mu.Unlock()
		aforward(peer, fwd, agg.add)
	}
}

type importAggregator struct {
	trader      *Trader
	req         ImportRequest
	mu          sync.Mutex
	offers      []Offer
	outstanding int
	done        func([]Offer, error)
}

// add folds one peer reply into the aggregate; unreachable peers degrade
// the result rather than failing the query.
func (a *importAggregator) add(offers []Offer, err error) {
	a.mu.Lock()
	if err == nil {
		a.offers = append(a.offers, offers...)
	}
	a.outstanding--
	finished := a.outstanding == 0
	combined := a.offers
	a.mu.Unlock()
	if finished {
		a.done(a.trader.finalize(a.req, combined), nil)
	}
}

func dedupeOffers(offers []Offer) []Offer {
	seen := make(map[string]bool, len(offers))
	out := offers[:0]
	for _, o := range offers {
		if seen[o.ID] {
			continue
		}
		seen[o.ID] = true
		out = append(out, o)
	}
	return out
}

// sortOffers orders by the named property descending (numeric-aware), then
// by ID for stability; with no property it orders by ID.
func sortOffers(offers []Offer, orderBy string) {
	orderBy = strings.ToLower(orderBy)
	sort.SliceStable(offers, func(i, j int) bool {
		if orderBy != "" {
			vi := offers[i].Properties.First(orderBy)
			vj := offers[j].Properties.First(orderBy)
			if c := compareProp(vi, vj); c != 0 {
				return c > 0 // descending: best first
			}
		}
		return offers[i].ID < offers[j].ID
	})
}

// compareProp compares numerically when possible, else as strings.
func compareProp(a, b string) int {
	ai, aok := parseInt(a)
	bi, bok := parseInt(b)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(s[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}
