package trader

import (
	"errors"
	"testing"
	"time"

	"mocca/internal/directory"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// driveSim runs op on a helper goroutine while advancing the simulated
// clock from the test goroutine.
func driveSim(t *testing.T, clk *vclock.Simulated, op func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			return err
		case <-deadline:
			t.Fatal("simulated op did not complete")
		default:
			time.Sleep(200 * time.Microsecond)
			clk.Advance(20 * time.Millisecond)
		}
	}
}

func TestTraderOverRPC(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(5))
	srvEP := rpc.NewEndpoint(net.MustAddNode("trader"), clk)
	cliEP := rpc.NewEndpoint(net.MustAddNode("app"), clk)
	NewServer(srvEP, New())
	client := NewClient(cliEP, "trader")

	if err := driveSim(t, clk, func() error { return client.RegisterType("printing") }); err != nil {
		t.Fatal(err)
	}
	if err := driveSim(t, clk, func() error {
		return client.Export(Offer{
			ID:          "o1",
			ServiceType: "printing",
			Provider:    "ps1",
			Properties:  directory.NewAttributes("ppm", "12"),
		})
	}); err != nil {
		t.Fatal(err)
	}

	var offers []Offer
	if err := driveSim(t, clk, func() error {
		var err error
		offers, err = client.Import(ImportRequest{ServiceType: "printing", Constraint: "(ppm>=10)"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Provider != "ps1" {
		t.Fatalf("imported %v", offers)
	}

	if err := driveSim(t, clk, func() error { return client.Withdraw("o1") }); err != nil {
		t.Fatal(err)
	}
	err := driveSim(t, clk, func() error { return client.Withdraw("o1") })
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("double withdraw err = %v", err)
	}
}

func TestFederationOverRPC(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(5))
	// Two trading domains (e.g. GMD and UPC) plus one importer.
	gmdEP := rpc.NewEndpoint(net.MustAddNode("trader-gmd"), clk)
	upcEP := rpc.NewEndpoint(net.MustAddNode("trader-upc"), clk)
	appEP := rpc.NewEndpoint(net.MustAddNode("app"), clk)

	gmdSrv := NewServer(gmdEP, New())
	upcSrv := NewServer(upcEP, New())
	for _, s := range []*Server{gmdSrv, upcSrv} {
		if err := s.Trader().RegisterType("conferencing"); err != nil {
			t.Fatal(err)
		}
	}
	if err := upcSrv.Trader().Export(Offer{ID: "upc-conf", ServiceType: "conferencing", Provider: "upc-mcu"}); err != nil {
		t.Fatal(err)
	}
	gmdSrv.Trader().LinkPeer("trader-upc")

	client := NewClient(appEP, "trader-gmd")
	var offers []Offer
	if err := driveSim(t, clk, func() error {
		var err error
		offers, err = client.Import(ImportRequest{ServiceType: "conferencing"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].ID != "upc-conf" {
		t.Fatalf("federated import over rpc = %v", offers)
	}
	if st := gmdSrv.Trader().Stats(); st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", st.Forwarded)
	}
}

func TestFederationSurvivesDeadPeer(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(5))
	gmdEP := rpc.NewEndpoint(net.MustAddNode("trader-gmd"), clk)
	appEP := rpc.NewEndpoint(net.MustAddNode("app"), clk)
	deadNode := net.MustAddNode("trader-dead")
	deadNode.SetDown(true)

	gmdSrv := NewServer(gmdEP, New())
	if err := gmdSrv.Trader().RegisterType("svc"); err != nil {
		t.Fatal(err)
	}
	if err := gmdSrv.Trader().Export(Offer{ID: "local", ServiceType: "svc"}); err != nil {
		t.Fatal(err)
	}
	gmdSrv.Trader().LinkPeer("trader-dead")

	client := NewClient(appEP, "trader-gmd")
	var offers []Offer
	if err := driveSim(t, clk, func() error {
		var err error
		offers, err = client.Import(ImportRequest{ServiceType: "svc"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].ID != "local" {
		t.Fatalf("import with dead peer = %v", offers)
	}
}
