package trader

import (
	"errors"
	"fmt"
	"testing"

	"mocca/internal/directory"
	"mocca/internal/netsim"
)

func newSeededTrader(t *testing.T) *Trader {
	t.Helper()
	tr := New()
	mustRegister := func(name string, supers ...string) {
		t.Helper()
		if err := tr.RegisterType(name, supers...); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister("service")
	mustRegister("printing", "service")
	mustRegister("color-printing", "printing")
	mustRegister("conferencing", "service")

	offers := []Offer{
		{ID: "o1", ServiceType: "printing", Provider: "ps1",
			Properties: directory.NewAttributes("ppm", "10", "location", "floor1")},
		{ID: "o2", ServiceType: "color-printing", Provider: "ps2",
			Properties: directory.NewAttributes("ppm", "5", "location", "floor2")},
		{ID: "o3", ServiceType: "conferencing", Provider: "conf1",
			Properties: directory.NewAttributes("maxusers", "20")},
	}
	for _, o := range offers {
		if err := tr.Export(o); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestImportByTypeWithSubtypes(t *testing.T) {
	tr := newSeededTrader(t)
	got, err := tr.Import(ImportRequest{ServiceType: "printing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("printing import = %d offers, want 2 (subtype included)", len(got))
	}
	got, err = tr.Import(ImportRequest{ServiceType: "color-printing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "o2" {
		t.Fatalf("color-printing import = %v", got)
	}
	got, err = tr.Import(ImportRequest{ServiceType: "service"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("service import = %d offers, want 3", len(got))
	}
}

func TestImportConstraint(t *testing.T) {
	tr := newSeededTrader(t)
	got, err := tr.Import(ImportRequest{ServiceType: "printing", Constraint: "(ppm>=8)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "o1" {
		t.Fatalf("constrained import = %v", got)
	}
	if _, err := tr.Import(ImportRequest{ServiceType: "printing", Constraint: "((("}); err == nil {
		t.Fatal("bad constraint accepted")
	}
}

func TestImportOrderingAndLimit(t *testing.T) {
	tr := newSeededTrader(t)
	got, err := tr.Import(ImportRequest{ServiceType: "printing", OrderBy: "ppm"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "o1" {
		t.Fatalf("order by ppm desc: first = %s, want o1", got[0].ID)
	}
	got, err = tr.Import(ImportRequest{ServiceType: "service", MaxOffers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("MaxOffers ignored: %d", len(got))
	}
}

func TestUnknownTypeErrors(t *testing.T) {
	tr := newSeededTrader(t)
	if _, err := tr.Import(ImportRequest{ServiceType: "nope"}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("import unknown type: %v", err)
	}
	if err := tr.Export(Offer{ID: "x", ServiceType: "nope"}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("export unknown type: %v", err)
	}
	if err := tr.RegisterType("sub", "nope"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("register with unknown supertype: %v", err)
	}
	if err := tr.RegisterType("printing"); !errors.Is(err, ErrTypeExists) {
		t.Fatalf("duplicate type: %v", err)
	}
}

func TestWithdraw(t *testing.T) {
	tr := newSeededTrader(t)
	if err := tr.Withdraw("o1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw("o1"); !errors.Is(err, ErrUnknownOffer) {
		t.Fatalf("double withdraw: %v", err)
	}
	got, err := tr.Import(ImportRequest{ServiceType: "printing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("after withdraw: %d offers", len(got))
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestModifyOffer(t *testing.T) {
	tr := newSeededTrader(t)
	if err := tr.ModifyOffer("o1", directory.NewAttributes("ppm", "99")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Import(ImportRequest{ServiceType: "printing", Constraint: "(ppm>=99)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "o1" {
		t.Fatalf("modified offer not matched: %v", got)
	}
	if err := tr.ModifyOffer("ghost", nil); !errors.Is(err, ErrUnknownOffer) {
		t.Fatalf("modify ghost: %v", err)
	}
}

func TestPolicyExcludes(t *testing.T) {
	tr := newSeededTrader(t)
	tr.AddPolicy(PolicyFunc{
		ID: "floor1-only",
		Fn: func(importer string, o Offer) bool {
			if importer != "visitor" {
				return true
			}
			return o.Properties.First("location") == "floor1"
		},
	})
	got, err := tr.Import(ImportRequest{ServiceType: "printing", Importer: "visitor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "o1" {
		t.Fatalf("policy-filtered import = %v", got)
	}
	// Other importers see everything.
	got, err = tr.Import(ImportRequest{ServiceType: "printing", Importer: "staff"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("staff import = %d", len(got))
	}
	if st := tr.Stats(); st.Excluded != 1 {
		t.Fatalf("Excluded = %d, want 1", st.Excluded)
	}
}

func TestFederation(t *testing.T) {
	local, remote := New(), New()
	for _, tr := range []*Trader{local, remote} {
		if err := tr.RegisterType("printing"); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.Export(Offer{ID: "l1", ServiceType: "printing", Provider: "local-ps"}); err != nil {
		t.Fatal(err)
	}
	if err := remote.Export(Offer{ID: "r1", ServiceType: "printing", Provider: "remote-ps"}); err != nil {
		t.Fatal(err)
	}
	local.LinkPeer("remote")
	local.SetForwarder(func(_ netsim.Address, req ImportRequest) ([]Offer, error) {
		return remote.Import(req)
	})
	got, err := local.Import(ImportRequest{ServiceType: "printing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("federated import = %d offers, want 2", len(got))
	}
}

func TestHopLimitStopsLoops(t *testing.T) {
	a, b := New(), New()
	for _, tr := range []*Trader{a, b} {
		if err := tr.RegisterType("svc"); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Export(Offer{ID: "a1", ServiceType: "svc"}); err != nil {
		t.Fatal(err)
	}
	// a and b link to each other: without the hop limit this recurses
	// forever.
	a.LinkPeer("b")
	b.LinkPeer("a")
	a.SetForwarder(func(_ netsim.Address, req ImportRequest) ([]Offer, error) { return b.Import(req) })
	b.SetForwarder(func(_ netsim.Address, req ImportRequest) ([]Offer, error) { return a.Import(req) })

	got, err := a.Import(ImportRequest{ServiceType: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "a1" {
		t.Fatalf("looped federation = %v", got)
	}
}

func TestDedupeAcrossFederation(t *testing.T) {
	a, b := New(), New()
	for _, tr := range []*Trader{a, b} {
		if err := tr.RegisterType("svc"); err != nil {
			t.Fatal(err)
		}
	}
	shared := Offer{ID: "dup", ServiceType: "svc"}
	if err := a.Export(shared); err != nil {
		t.Fatal(err)
	}
	if err := b.Export(shared); err != nil {
		t.Fatal(err)
	}
	a.LinkPeer("b")
	a.SetForwarder(func(_ netsim.Address, req ImportRequest) ([]Offer, error) { return b.Import(req) })
	got, err := a.Import(ImportRequest{ServiceType: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("dedupe failed: %d copies", len(got))
	}
}

func TestManyOffersScale(t *testing.T) {
	tr := New()
	if err := tr.RegisterType("svc"); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		err := tr.Export(Offer{
			ID:          fmt.Sprintf("o%04d", i),
			ServiceType: "svc",
			Properties:  directory.NewAttributes("load", fmt.Sprintf("%d", i%100)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Import(ImportRequest{ServiceType: "svc", Constraint: "(load<=4)", OrderBy: "load", MaxOffers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limited import = %d", len(got))
	}
	// Descending order by load, constrained to load<=4: all ten must be 4.
	for _, o := range got {
		if v := o.Properties.First("load"); v != "4" {
			t.Fatalf("ordering wrong: got load %s, want 4", v)
		}
	}
}
