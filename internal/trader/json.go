package trader

import "encoding/json"

func decodeJSON(data []byte, v any) error { return json.Unmarshal(data, v) }

func encodeJSON(v any) ([]byte, error) { return json.Marshal(v) }
