// Package id provides identifier generation for the simulated environment.
//
// Identifiers are deterministic given a seed, which keeps simulation runs
// reproducible: the same scenario always names the same objects. The
// generator is safe for concurrent use.
package id

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Generator produces unique identifiers. The zero value is NOT usable; use
// New or NewSeeded.
type Generator struct {
	mu       sync.Mutex
	rng      *rand.Rand
	counters map[string]uint64
}

// New returns a Generator seeded with a fixed default seed, suitable for
// deterministic tests.
func New() *Generator { return NewSeeded(1992) }

// NewSeeded returns a Generator whose random component is derived from the
// given seed.
func NewSeeded(seed int64) *Generator {
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		counters: make(map[string]uint64),
	}
}

// Next returns the next identifier for the given kind, of the form
// "<kind>-<seq>-<entropy>", e.g. "msg-42-7f3a91c2". Sequence numbers are
// per-kind and start at 1.
func (g *Generator) Next(kind string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.counters[kind]++
	return fmt.Sprintf("%s-%d-%08x", kind, g.counters[kind], g.rng.Uint32())
}

// Seq returns the next bare sequence number for the given kind.
func (g *Generator) Seq(kind string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.counters[kind]++
	return g.counters[kind]
}

// Kind extracts the kind prefix from an identifier produced by Next, or ""
// if the identifier does not look like one.
func Kind(identifier string) string {
	i := strings.IndexByte(identifier, '-')
	if i <= 0 {
		return ""
	}
	return identifier[:i]
}

// Valid reports whether the identifier has the three-part shape produced by
// Next.
func Valid(identifier string) bool {
	parts := strings.Split(identifier, "-")
	if len(parts) < 3 {
		return false
	}
	if parts[0] == "" {
		return false
	}
	// Sequence part must be a positive decimal number.
	seq := parts[len(parts)-2]
	if seq == "" || seq == "0" {
		return false
	}
	for _, c := range seq {
		if c < '0' || c > '9' {
			return false
		}
	}
	ent := parts[len(parts)-1]
	if len(ent) != 8 {
		return false
	}
	for _, c := range ent {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
