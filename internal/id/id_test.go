package id

import (
	"testing"
	"testing/quick"
)

func TestNextUnique(t *testing.T) {
	g := New()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		v := g.Next("obj")
		if seen[v] {
			t.Fatalf("duplicate id %q at iteration %d", v, i)
		}
		seen[v] = true
	}
}

func TestDeterministicAcrossGenerators(t *testing.T) {
	a, b := NewSeeded(7), NewSeeded(7)
	for i := 0; i < 100; i++ {
		if got, want := a.Next("x"), b.Next("x"); got != want {
			t.Fatalf("iteration %d: %q != %q", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := NewSeeded(1), NewSeeded(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Next("x") == b.Next("x") {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestKind(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"msg-1-00000000", "msg"},
		{"activity-12-deadbeef", "activity"},
		{"noseparator", ""},
		{"", ""},
		{"-1-abcdef01", ""},
	}
	for _, tt := range tests {
		if got := Kind(tt.in); got != tt.want {
			t.Errorf("Kind(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSeqMonotonic(t *testing.T) {
	g := New()
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		v := g.Seq("k")
		if v != prev+1 {
			t.Fatalf("Seq = %d, want %d", v, prev+1)
		}
		prev = v
	}
	if g.Seq("other") != 1 {
		t.Fatal("Seq counters are not per-kind")
	}
}

func TestValidGenerated(t *testing.T) {
	g := New()
	for _, kind := range []string{"msg", "act", "node", "multi-part-kind"} {
		v := g.Next(kind)
		if !Valid(v) {
			t.Errorf("Valid(%q) = false for generated id", v)
		}
	}
}

func TestValidRejects(t *testing.T) {
	for _, bad := range []string{"", "x", "x-y", "x-0-00000000", "x-1-zzzz", "x-1-short", "-1-00000000"} {
		if Valid(bad) {
			t.Errorf("Valid(%q) = true, want false", bad)
		}
	}
}

func TestQuickGeneratedAlwaysValid(t *testing.T) {
	g := New()
	f := func(n uint8) bool {
		return Valid(g.Next("k")) && Kind(g.Next("kind")) == "kind"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
