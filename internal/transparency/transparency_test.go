package transparency

import (
	"errors"
	"strings"
	"testing"

	"mocca/internal/odp"
	"mocca/internal/org"
)

func TestSelectorDefaultsAndTailoring(t *testing.T) {
	s := NewSelector()
	// Defaults provide all four CSCW transparencies.
	m := s.For("anyone")
	for _, tr := range odp.CSCWTransparencies() {
		if !m.Has(tr) {
			t.Fatalf("default mask missing %v", tr)
		}
	}
	// A user deselects time transparency.
	s.Disable("ada", odp.Time)
	if s.For("ada").Has(odp.Time) {
		t.Fatal("Disable had no effect")
	}
	if !s.For("ben").Has(odp.Time) {
		t.Fatal("Disable leaked to other principals")
	}
	s.Enable("ada", odp.Time)
	if !s.For("ada").Has(odp.Time) {
		t.Fatal("Enable had no effect")
	}
	// Wholesale replacement.
	s.Set("carol", odp.MaskOf(odp.View))
	if s.For("carol").Has(odp.Time) || !s.For("carol").Has(odp.View) {
		t.Fatal("Set wrong")
	}
	// Default change affects untailored principals only.
	s.SetDefault(0)
	if s.For("ben").Has(odp.Time) {
		t.Fatal("new default not applied")
	}
	if !s.For("ada").Has(odp.Time) {
		t.Fatal("tailored principal overridden by default change")
	}
}

func newOrgKB(t *testing.T) *org.KnowledgeBase {
	t.Helper()
	kb := org.NewKnowledgeBase()
	for _, id := range []string{"gmd", "upc", "rival"} {
		if err := kb.AddObject(org.Object{ID: id, Kind: org.KindOrg}); err != nil {
			t.Fatal(err)
		}
	}
	kb.SetPolicy("gmd", "data-sharing", "open")
	kb.SetPolicy("upc", "data-sharing", "open")
	kb.SetPolicy("rival", "data-sharing", "closed")
	return kb
}

func TestResolveOrg(t *testing.T) {
	sel := NewSelector()
	kb := newOrgKB(t)

	// Same org: always seamless.
	v, err := ResolveOrg(sel, kb, "prinz", "gmd", "gmd")
	if err != nil || !v.Visible || v.Annotation != "" {
		t.Fatalf("same-org view = %+v, %v", v, err)
	}
	// Cross-org with transparency ON (default): seamless.
	v, err = ResolveOrg(sel, kb, "prinz", "gmd", "upc")
	if err != nil || !v.Visible || v.Annotation != "" {
		t.Fatalf("transparent cross-org = %+v, %v", v, err)
	}
	// Cross-org with transparency OFF: visible, but annotated.
	sel.Disable("prinz", odp.Organisation)
	v, err = ResolveOrg(sel, kb, "prinz", "gmd", "upc")
	if err != nil || !v.Visible || v.Annotation == "" {
		t.Fatalf("opaque cross-org = %+v, %v", v, err)
	}
	// Incompatible policies block regardless of transparency.
	if _, err := ResolveOrg(sel, kb, "prinz", "gmd", "rival"); !errors.Is(err, ErrOrgBoundary) {
		t.Fatalf("incompatible orgs err = %v", err)
	}
	sel.Enable("prinz", odp.Organisation)
	if _, err := ResolveOrg(sel, kb, "prinz", "gmd", "rival"); !errors.Is(err, ErrOrgBoundary) {
		t.Fatal("transparency hid a policy block")
	}
}

type routerFixture struct {
	sel      *Selector
	online   map[string]bool
	syncLog  []string
	asyncLog []string
	router   *TimeRouter
}

func newRouterFixture() *routerFixture {
	f := &routerFixture{sel: NewSelector(), online: map[string]bool{}}
	f.router = &TimeRouter{
		Selector: f.sel,
		Presence: func(u string) bool { return f.online[u] },
		Sync: func(u string, p any) error {
			f.syncLog = append(f.syncLog, u)
			return nil
		},
		Async: func(u string, p any) error {
			f.asyncLog = append(f.asyncLog, u)
			return nil
		},
	}
	return f
}

func TestTimeRouterOnline(t *testing.T) {
	f := newRouterFixture()
	f.online["ben"] = true
	mode, err := f.router.Route("ada", "ben", "hello")
	if err != nil || mode != ModeSync {
		t.Fatalf("route = %v, %v", mode, err)
	}
	if len(f.syncLog) != 1 || len(f.asyncLog) != 0 {
		t.Fatalf("logs = %v %v", f.syncLog, f.asyncLog)
	}
}

func TestTimeRouterOfflineWithTransparency(t *testing.T) {
	f := newRouterFixture()
	mode, err := f.router.Route("ada", "ben", "hello")
	if err != nil || mode != ModeAsync {
		t.Fatalf("route = %v, %v", mode, err)
	}
	if len(f.asyncLog) != 1 {
		t.Fatalf("async log = %v", f.asyncLog)
	}
}

func TestTimeRouterOfflineWithoutTransparency(t *testing.T) {
	// The ablation the paper implies: without temporal transparency,
	// synchronous/asynchronous integration fails for offline recipients.
	f := newRouterFixture()
	f.sel.Disable("ada", odp.Time)
	_, err := f.router.Route("ada", "ben", "hello")
	if !errors.Is(err, ErrRecipientOffline) {
		t.Fatalf("err = %v, want ErrRecipientOffline", err)
	}
	if len(f.asyncLog) != 0 {
		t.Fatal("async delivery despite transparency off")
	}
}

func TestFilterView(t *testing.T) {
	sel := NewSelector()
	fields := map[string]string{
		"title":       "report",
		"view:zoom":   "150%",
		"view:cursor": "12,4",
		"body":        "text",
	}
	// Transparency on (default): view state hidden.
	got := FilterView(sel, "ada", fields)
	if len(got) != 2 || got["title"] != "report" {
		t.Fatalf("filtered = %v", got)
	}
	// WYSIWIS application turns view transparency off: sees everything.
	sel.Disable("wysiwis-app", odp.View)
	got = FilterView(sel, "wysiwis-app", fields)
	if len(got) != 4 {
		t.Fatalf("unfiltered = %v", got)
	}
	// Original map untouched.
	if len(fields) != 4 {
		t.Fatal("FilterView mutated input")
	}
}

func TestActivityFilter(t *testing.T) {
	sel := NewSelector()
	memberOf := []string{"act-1", "act-2"}
	// Transparency on: unrelated activities invisible.
	if !ActivityFilter(sel, "ada", memberOf, "act-1") {
		t.Fatal("own activity filtered")
	}
	if ActivityFilter(sel, "ada", memberOf, "act-99") {
		t.Fatal("unrelated activity visible with transparency on")
	}
	if !ActivityFilter(sel, "ada", memberOf, "") {
		t.Fatal("environment event filtered")
	}
	// Admin turns activity transparency off to monitor everything.
	sel.Disable("admin", odp.Activity)
	if !ActivityFilter(sel, "admin", nil, "act-99") {
		t.Fatal("admin cannot see unrelated activity with transparency off")
	}
}

func TestFilterReplica(t *testing.T) {
	sel := NewSelector()
	meta := ReplicaMeta{Site: "upc", Writer: "gmd", Version: "gmd:2 upc:1"}
	fields := map[string]string{"title": "doc"}

	// Default posture: replication transparency selected — one space.
	out := FilterReplica(sel, "ada", meta, fields)
	if len(out) != 1 || out["title"] != "doc" {
		t.Fatalf("transparent read altered fields: %v", out)
	}

	// Deselecting replication transparency surfaces the distribution.
	sel.Disable("ada", odp.Replication)
	out = FilterReplica(sel, "ada", meta, fields)
	if out[ReplicaSiteField] != "upc" || out[ReplicaWriterField] != "gmd" ||
		out[ReplicaVersionField] != "gmd:2 upc:1" {
		t.Fatalf("annotations missing: %v", out)
	}
	if fields[ReplicaSiteField] != "" {
		t.Fatal("FilterReplica mutated the caller's fields")
	}

	// The annotations are view-prefixed, so view transparency hides them.
	if !strings.HasPrefix(ReplicaSiteField, ViewPrefix) {
		t.Fatal("replica annotations must be view fields")
	}
	hidden := FilterView(sel, "ben", out)
	if _, ok := hidden[ReplicaSiteField]; ok {
		t.Fatal("view transparency did not hide replica annotations")
	}
}

func TestFilterLocation(t *testing.T) {
	sel := NewSelector()
	meta := LocationMeta{Holder: "gmd", Reader: "nott", Via: "trader"}
	fields := map[string]string{"title": "doc"}

	// Default posture: location transparency selected — a remote read
	// looks exactly like a local one.
	if !sel.For("ada").Has(odp.Location) {
		t.Fatal("location transparency not in the default mask")
	}
	out := FilterLocation(sel, "ada", meta, fields)
	if len(out) != 1 || out["title"] != "doc" {
		t.Fatalf("transparent read altered fields: %v", out)
	}

	// Deselecting it surfaces where the read was actually served.
	sel.Disable("ada", odp.Location)
	out = FilterLocation(sel, "ada", meta, fields)
	if out[LocationHolderField] != "gmd" || out[LocationReaderField] != "nott" ||
		out[LocationViaField] != "trader" {
		t.Fatalf("annotations missing: %v", out)
	}
	if fields[LocationHolderField] != "" {
		t.Fatal("FilterLocation mutated the caller's fields")
	}

	// Annotations are view-prefixed: view transparency hides them.
	hidden := FilterView(sel, "ben", out)
	if _, ok := hidden[LocationHolderField]; ok {
		t.Fatal("view transparency did not hide location annotations")
	}
}
