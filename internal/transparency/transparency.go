// Package transparency implements §4's "Support for Transparency" and the
// §6.1 demand that selection be user-level: "with CSCW systems selection
// mechanisms shouldn't be provided only for application designers and
// developers. The user centred view of CSCW systems means that the user
// should be allowed to select their required transparency."
//
// A Selector holds a per-principal odp.Mask that users change at runtime.
// The four CSCW transparency mechanisms consult it:
//
//   - organisation: hide inter-organisational boundaries and policies
//   - time: make interaction independent of synchronous/asynchronous mode
//   - view: hide per-user presentation state (WYSIWIS apps opt out)
//   - activity: hide objects and events of unrelated activities
//
// In the viewpoint map (ARCHITECTURE.md) this is the computational
// viewpoint's selection mechanism: transparencies the user leaves
// selected are provided by engineering machinery (replication by
// internal/replica, persistence by information/logstore, bindings by
// internal/channel); deselecting one surfaces that machinery — e.g.
// FilterReplica annotates reads with the serving replica, writing site
// and version vector.
package transparency

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"mocca/internal/odp"
	"mocca/internal/org"
)

// Selector stores transparency selections per principal, with a default
// mask for principals who never tailored theirs.
type Selector struct {
	mu       sync.RWMutex
	defaults odp.Mask
	per      map[string]odp.Mask
}

// NewSelector creates a selector whose default mask provides every CSCW
// transparency (the "it just works" posture) plus replication and
// location transparency — replicated state looks like one space and a
// trader-resolved remote read looks like a local one; users deselect
// what they want to see.
func NewSelector() *Selector {
	return &Selector{
		defaults: odp.MaskOf(odp.Organisation, odp.Time, odp.View, odp.Activity, odp.Replication, odp.Location),
		per:      make(map[string]odp.Mask),
	}
}

// SetDefault replaces the default mask.
func (s *Selector) SetDefault(m odp.Mask) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaults = m
}

// For returns the effective mask for a principal.
func (s *Selector) For(principal string) odp.Mask {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if m, ok := s.per[principal]; ok {
		return m
	}
	return s.defaults
}

// Set replaces a principal's mask — the user-level tailoring call.
func (s *Selector) Set(principal string, m odp.Mask) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.per[principal] = m
}

// Enable turns one transparency on for a principal.
func (s *Selector) Enable(principal string, t odp.Transparency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.per[principal]
	if !ok {
		cur = s.defaults
	}
	s.per[principal] = cur.With(t)
}

// Disable turns one transparency off for a principal.
func (s *Selector) Disable(principal string, t odp.Transparency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.per[principal]
	if !ok {
		cur = s.defaults
	}
	s.per[principal] = cur.Without(t)
}

// Errors of the transparency mechanisms.
var (
	ErrRecipientOffline = errors.New("transparency: recipient offline and time transparency not selected")
	ErrOrgBoundary      = errors.New("transparency: inter-organisational interaction blocked")
)

// --- Organisation transparency -----------------------------------------

// OrgView is what a principal sees of a resource across an organisational
// boundary.
type OrgView struct {
	Visible bool
	// Annotation explains the boundary when organisation transparency is
	// OFF (the user asked to see organisational structure).
	Annotation string
}

// ResolveOrg applies organisation transparency: with it selected,
// compatible organisations look like one seamless space; without it, the
// boundary is surfaced to the user. Incompatible policies block interaction
// either way — transparency hides structure, not policy.
func ResolveOrg(sel *Selector, kb *org.KnowledgeBase, principal, principalOrg, resourceOrg string) (OrgView, error) {
	if principalOrg == resourceOrg || resourceOrg == "" {
		return OrgView{Visible: true}, nil
	}
	if !kb.Compatible(principalOrg, resourceOrg) {
		return OrgView{}, fmt.Errorf("%w: %s and %s have incompatible policies", ErrOrgBoundary, principalOrg, resourceOrg)
	}
	if sel.For(principal).Has(odp.Organisation) {
		return OrgView{Visible: true}, nil
	}
	return OrgView{
		Visible:    true,
		Annotation: fmt.Sprintf("crossing organisational boundary %s -> %s", principalOrg, resourceOrg),
	}, nil
}

// --- Time transparency ---------------------------------------------------

// Presence reports whether a user is reachable synchronously right now.
type Presence func(user string) bool

// SyncDeliver delivers a payload synchronously (e.g. into a live session).
type SyncDeliver func(user string, payload any) error

// AsyncDeliver queues a payload for later (e.g. via the MHS).
type AsyncDeliver func(user string, payload any) error

// Mode records which path a routed delivery took.
type Mode string

// Delivery modes.
const (
	ModeSync  Mode = "sync"
	ModeAsync Mode = "async"
)

// TimeRouter realises temporal transparency: "interaction will be
// independent of the mode we are using". Online recipients get synchronous
// delivery; offline recipients get store-and-forward — but only when the
// SENDER selected time transparency. Without it, reaching an offline user
// is an error the sender must handle (the mode is in their face).
type TimeRouter struct {
	Selector *Selector
	Presence Presence
	Sync     SyncDeliver
	Async    AsyncDeliver
}

// Route delivers payload from sender to recipient per the rules above.
func (r *TimeRouter) Route(sender, recipient string, payload any) (Mode, error) {
	if r.Presence != nil && r.Presence(recipient) {
		if err := r.Sync(recipient, payload); err == nil {
			return ModeSync, nil
		}
		// Fall through: a failed live delivery degrades to async when
		// permitted, mirroring a conference drop mid-session.
	}
	if !r.Selector.For(sender).Has(odp.Time) {
		return "", fmt.Errorf("%w: %s", ErrRecipientOffline, recipient)
	}
	if err := r.Async(recipient, payload); err != nil {
		return "", err
	}
	return ModeAsync, nil
}

// --- View transparency ---------------------------------------------------

// ViewPrefix marks fields that carry per-user presentation state.
const ViewPrefix = "view:"

// FilterView applies view transparency to shared fields: with the
// transparency selected, per-user view fields are hidden ("applications can
// be interested or not in the way users view data"); WYSIWIS applications
// disable it and see everything.
func FilterView(sel *Selector, principal string, fields map[string]string) map[string]string {
	out := make(map[string]string, len(fields))
	hide := sel.For(principal).Has(odp.View)
	for k, v := range fields {
		if hide && strings.HasPrefix(k, ViewPrefix) {
			continue
		}
		out[k] = v
	}
	return out
}

// --- Replication transparency ---------------------------------------------

// ReplicaMeta describes the replica that served a read of replicated
// state: which site's replica answered, which site last wrote the object,
// and the object's version vector at the serving replica.
type ReplicaMeta struct {
	// Site is the replica that served the read.
	Site string
	// Writer is the site whose write produced the current state.
	Writer string
	// Version is the serving replica's version vector for the object, in
	// vclock.Version.String() form — comparing it across replicas is how
	// replica lag becomes visible.
	Version string
}

// Replica-annotation field keys. They carry the ViewPrefix so that view
// transparency composes: a principal who selected view transparency but
// not replication transparency still sees clean fields.
const (
	ReplicaSiteField    = ViewPrefix + "replica:site"
	ReplicaWriterField  = ViewPrefix + "replica:writer"
	ReplicaVersionField = ViewPrefix + "replica:version"
)

// FilterReplica applies replication transparency to a read of replicated
// state. With the transparency selected the replica set looks like one
// information space — the fields pass through untouched. Without it, the
// reader asked to see the distribution: the returned copy is annotated
// with which replica served the read, who wrote the state, and the
// version vector, so replica lag is in the user's face.
func FilterReplica(sel *Selector, principal string, meta ReplicaMeta, fields map[string]string) map[string]string {
	if sel.For(principal).Has(odp.Replication) {
		return fields
	}
	out := make(map[string]string, len(fields)+3)
	for k, v := range fields {
		out[k] = v
	}
	out[ReplicaSiteField] = meta.Site
	out[ReplicaWriterField] = meta.Writer
	out[ReplicaVersionField] = meta.Version
	return out
}

// --- Location / placement transparency ------------------------------------

// LocationMeta describes how a read of non-locally-placed state was
// served: which site's replica actually held the object, which site asked,
// and the resolution path (e.g. "trader" for a placement-offer lookup).
type LocationMeta struct {
	// Holder is the site whose replica served the read.
	Holder string
	// Reader is the site the read was issued from — a site not placed for
	// the object's space.
	Reader string
	// Via names the resolution mechanism that found the holder.
	Via string
}

// Location-annotation field keys. Like the replica annotations they carry
// the ViewPrefix so view transparency composes.
const (
	LocationHolderField = ViewPrefix + "location:holder"
	LocationReaderField = ViewPrefix + "location:reader"
	LocationViaField    = ViewPrefix + "location:via"
)

// FilterLocation applies location transparency to a read that was served
// by a remote holder under partial replication. With the transparency
// selected (the default) a non-placed site looks like it holds every
// space — the fields pass through untouched. Without it, the reader asked
// to see placement: the returned copy is annotated with the holding site,
// the asking site and the resolution path, so the cost of not being
// placed is in the user's face.
func FilterLocation(sel *Selector, principal string, meta LocationMeta, fields map[string]string) map[string]string {
	if sel.For(principal).Has(odp.Location) {
		return fields
	}
	out := make(map[string]string, len(fields)+3)
	for k, v := range fields {
		out[k] = v
	}
	out[LocationHolderField] = meta.Holder
	out[LocationReaderField] = meta.Reader
	out[LocationViaField] = meta.Via
	return out
}

// --- Activity transparency -----------------------------------------------

// ActivityFilter decides whether an event belonging to eventActivity should
// reach a principal participating in memberOf. With activity transparency
// selected, unrelated activities are invisible ("this helps activities not
// to be disturbed by other unrelated activities"); without it, the
// principal sees everything (e.g. an administrator monitoring the
// environment).
func ActivityFilter(sel *Selector, principal string, memberOf []string, eventActivity string) bool {
	if !sel.For(principal).Has(odp.Activity) {
		return true
	}
	if eventActivity == "" {
		return true // environment-wide events always pass
	}
	for _, a := range memberOf {
		if a == eventActivity {
			return true
		}
	}
	return false
}
