// Ablation benchmarks for design choices DESIGN.md calls out beyond the
// paper's figures: the engineering channel's migration transparency, and
// per-link FIFO ordering in the simulated network (which the rtc session
// otherwise repairs with its gap buffer).
package mocca

import (
	"fmt"
	"testing"
	"time"

	"mocca/internal/engineering"
	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

// BenchmarkEngineeringChannel measures invocation through the full
// stub/binder/protocol path, with and without a migration mid-run.
func BenchmarkEngineeringChannel(b *testing.B) {
	newWorld := func(b *testing.B, opts ...engineering.BindOption) (*engineering.Cluster, *engineering.Capsule, *engineering.Channel) {
		b.Helper()
		node := engineering.NewNode("n")
		capA, err := node.NewCapsule("a")
		if err != nil {
			b.Fatal(err)
		}
		capB, err := node.NewCapsule("b")
		if err != nil {
			b.Fatal(err)
		}
		cluster, err := capA.NewCluster("c")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.NewObject("store", engineering.KVBehaviour()); err != nil {
			b.Fatal(err)
		}
		ch, err := engineering.Bind(cluster, "store", opts...)
		if err != nil {
			b.Fatal(err)
		}
		return cluster, capB, ch
	}

	b.Run("stable_binding", func(b *testing.B) {
		_, _, ch := newWorld(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ch.Invoke("set", []byte("k=v")); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("migration_every_16_transparent", func(b *testing.B) {
		cluster, capB, ch := newWorld(b, engineering.WithMigrationTransparency())
		capA := cluster.Capsule()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%16 == 15 {
				target := capB
				if cluster.Capsule() == capB {
					target = capA
				}
				if err := cluster.Migrate(target); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ch.Invoke("set", []byte("k=v")); err != nil {
				b.Fatal(err)
			}
		}
		_, rebinds := ch.Stats()
		b.ReportMetric(float64(rebinds), "rebinds")
	})
}

// BenchmarkAblationFIFO measures the cost of per-link FIFO ordering vs
// unordered delivery with client-side gap repair, for a burst of messages.
func BenchmarkAblationFIFO(b *testing.B) {
	for _, fifo := range []bool{true, false} {
		name := fmt.Sprintf("fifo=%v", fifo)
		b.Run(name, func(b *testing.B) {
			clk := vclock.NewSimulated(netsim.DefaultEpoch)
			net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(2))
			a := net.MustAddNode("a")
			dst := net.MustAddNode("b")
			net.SetLink("a", "b", netsim.LinkProfile{
				Latency: time.Millisecond,
				Jitter:  10 * time.Millisecond,
				FIFO:    fifo,
			})
			received := 0
			dst.Handle(func(netsim.Message) { received++ })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 16; j++ {
					if err := a.Send(netsim.Message{To: "b", Payload: []byte{byte(j)}}); err != nil {
						b.Fatal(err)
					}
				}
				clk.RunUntilIdle()
			}
			b.StopTimer()
			if received != b.N*16 {
				b.Fatalf("received %d of %d", received, b.N*16)
			}
		})
	}
}
