package mocca

import (
	"testing"
	"time"

	"mocca/internal/groupware"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

// replicationOutcome fingerprints the end state of a partition scenario so
// two seeded runs can be compared for reproducibility.
type replicationOutcome struct {
	title, site, vv string
	version         uint64
	conflictsAtGMD  int
}

// runPartitionScenario drives the partition-during-sync scenario from the
// issue: three sites replicate one object, the network partitions gmd away
// from {upc, nott}, gmd and upc update the object concurrently, the
// partition heals, and anti-entropy reconciles everything.
func runPartitionScenario(t *testing.T, advanceBetweenWrites time.Duration) replicationOutcome {
	t.Helper()
	dep := NewDeployment(WithSeed(1992))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	nott := dep.AddSite("nott", "nott.uk")
	sites := []*Site{gmd, upc, nott}

	var conflictsAtGMD int
	gmd.Space().Subscribe("", func(ev information.Event) {
		if ev.Kind == "conflict" {
			conflictsAtGMD++
			if ev.Conflict == nil {
				t.Error("conflict event without detail")
			}
		}
	})

	// A shared object born at gmd, writable by upc's editor too.
	obj, err := gmd.Space().Put("prinz", SharedSchemaName, map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	if err := gmd.Space().Share("prinz", obj.ID, "navarro", true); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	for _, s := range sites {
		if got, err := s.Space().Get("prinz", obj.ID); err != nil || got.Fields["title"] != "draft" {
			t.Fatalf("site %s missing replicated object: %v %v", s.Name, got, err)
		}
	}

	// Partition gmd away from the other two and write on both sides.
	dep.Network().Partition(
		[]netsim.Address{"mta-gmd", "repl-gmd"},
		[]netsim.Address{"mta-upc", "repl-upc", "mta-nott", "repl-nott"},
	)
	if _, err := upc.Space().Update("navarro", obj.ID, 1, map[string]string{"title": "upc-edit"}); err != nil {
		t.Fatal(err)
	}
	dep.Advance(advanceBetweenWrites)
	if _, err := gmd.Space().Update("prinz", obj.ID, 1, map[string]string{"title": "gmd-edit"}); err != nil {
		t.Fatal(err)
	}
	// Draining under the partition must terminate (sync failure cap) and
	// must not leak writes across the cut.
	dep.Run()
	if got, _ := upc.Space().Get("prinz", obj.ID); got.Fields["title"] == "gmd-edit" {
		t.Fatal("update crossed the partition")
	}
	if got, _ := gmd.Space().Get("prinz", obj.ID); got.Fields["title"] != "gmd-edit" {
		t.Fatalf("local write lost: %v", got.Fields)
	}
	// upc's write did reach nott (same side of the partition).
	if got, _ := nott.Space().Get("prinz", obj.ID); got.Fields["title"] != "upc-edit" {
		t.Fatalf("intra-partition sync failed: %v", got.Fields)
	}

	// Heal: the deployment's heal hook kicks sync rounds everywhere.
	dep.Network().Heal()
	dep.Run()

	ref, err := gmd.Space().Get("prinz", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites[1:] {
		got, err := s.Space().Get("prinz", obj.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.VV.Compare(ref.VV) != vclock.Equal || got.Version != ref.Version ||
			got.Site != ref.Site || got.Fields["title"] != ref.Fields["title"] {
			t.Fatalf("site %s diverged after heal: %+v vs %+v", s.Name, got, ref)
		}
	}
	if ref.VV.Counter("gmd") != 2 || ref.VV.Counter("upc") != 1 || ref.Version != 3 {
		t.Fatalf("merged history wrong: %+v", ref)
	}
	if conflictsAtGMD == 0 {
		t.Fatal("gmd never surfaced the concurrent update as a conflict event")
	}

	// Sync traffic is engineering-visible: repl-* channels carry frames...
	var syncFrames int64
	for _, c := range dep.ChannelStats() {
		if len(c.Local) > 5 && c.Local[:5] == "repl-" {
			syncFrames += c.FramesOut
		}
	}
	if syncFrames == 0 {
		t.Fatal("no sync traffic in ChannelStats")
	}
	if repl := dep.Fabric().TotalsFor("repl-"); repl.FramesOut != syncFrames || repl.BytesOut == 0 {
		t.Fatalf("fabric repl slice inconsistent: %+v vs %d frames", repl, syncFrames)
	}
	// ...and nothing bypassed the channel stack.
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
	return replicationOutcome{
		title:          ref.Fields["title"],
		site:           ref.Site,
		vv:             ref.VV.String(),
		version:        ref.Version,
		conflictsAtGMD: conflictsAtGMD,
	}
}

// TestReplicationPartitionConvergence is the issue's acceptance scenario:
// concurrent updates during a partition converge deterministically on all
// sites after Heal, surfacing a conflict event, with sync traffic visible
// in the engineering bookkeeping. Both writes land at the same simulated
// instant, so the site-ordered tie-break decides ("upc" > "gmd").
func TestReplicationPartitionConvergence(t *testing.T) {
	out := runPartitionScenario(t, 0)
	if out.title != "upc-edit" || out.site != "upc" {
		t.Fatalf("winner = %+v, want upc-edit by site order", out)
	}
	// Seeded and reproducible: a second run ends in the identical state.
	if again := runPartitionScenario(t, 0); again != out {
		t.Fatalf("scenario not reproducible: %+v vs %+v", again, out)
	}
}

// TestReplicationPartitionLastWriterWins advances the clock between the
// two partitioned writes: gmd writes later and wins on timestamp despite
// the lower site name.
func TestReplicationPartitionLastWriterWins(t *testing.T) {
	out := runPartitionScenario(t, time.Second)
	if out.title != "gmd-edit" || out.site != "gmd" {
		t.Fatalf("winner = %+v, want gmd-edit by timestamp", out)
	}
}

// TestGroupwareBindsToSiteReplica registers a team room against one
// site's environment face: posts land on that site's replica, replicate
// to the other site, and a reader who deselected replication transparency
// sees which replica served them.
func TestGroupwareBindsToSiteReplica(t *testing.T) {
	dep := NewDeployment(WithSeed(5))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	room, err := groupware.NewTeamRoom(gmd.Env(), "birlinghoven")
	if err != nil {
		t.Fatal(err)
	}
	note, err := room.Post("prinz", "night", "handover", "all quiet")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Env().Space().Len() != 0 {
		t.Fatal("post leaked into the root space instead of the site replica")
	}
	dep.Run()

	// The note replicated to upc's replica; the shared ACL admits the
	// room principal there too.
	got, err := upc.Space().Get("room:birlinghoven", note.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["headline"] != "handover" || got.Site != "gmd" {
		t.Fatalf("replicated note = %+v", got)
	}

	// Replication transparency off: the upc read is annotated.
	dep.Env().Transparency().Disable("prinz", odp.Replication)
	annotated, err := upc.Env().Get("prinz", note.ID)
	if err != nil {
		t.Fatal(err)
	}
	if annotated.Fields[transparency.ReplicaSiteField] != "upc" ||
		annotated.Fields[transparency.ReplicaWriterField] != "gmd" {
		t.Fatalf("annotations = %v", annotated.Fields)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationCrashRecovery: a site's replica node crashes, misses
// writes (the survivors' replicators hit the failure cap and go dormant),
// then recovers — the recovery hook must restart reconciliation so the
// deployment converges without any partition or manual kick.
func TestReplicationCrashRecovery(t *testing.T) {
	dep := NewDeployment(WithSeed(8))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	obj, err := gmd.Space().Put("prinz", SharedSchemaName, map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()

	node, ok := dep.Network().Node(netsim.Address("repl-upc"))
	if !ok {
		t.Fatal("repl-upc node missing")
	}
	node.SetDown(true)
	if _, err := gmd.Space().Update("prinz", obj.ID, 1, map[string]string{"title": "while-down"}); err != nil {
		t.Fatal(err)
	}
	dep.Run() // gmd's rounds fail toward the crashed node, then go dormant
	if got, _ := upc.Space().Get("prinz", obj.ID); got.Fields["title"] == "while-down" {
		t.Fatal("crashed replica received the write")
	}

	node.SetDown(false) // recovery hook kicks sync everywhere
	dep.Run()
	got, err := upc.Space().Get("prinz", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["title"] != "while-down" || got.VV.Counter("gmd") != 2 {
		t.Fatalf("recovered replica did not catch up: %+v", got)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscriberCannotCorruptCallerCopy: a subscriber mutating ev.Object
// must not alter the object returned to the writer.
func TestSubscriberCannotCorruptCallerCopy(t *testing.T) {
	dep := NewDeployment(WithSeed(2))
	site := dep.AddSite("gmd", "gmd.de")
	site.Space().Subscribe("", func(ev information.Event) {
		if ev.Object != nil {
			ev.Object.Fields["title"] = "mutated"
		}
	})
	obj, err := site.Space().Put("prinz", SharedSchemaName, map[string]string{"title": "clean"})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Fields["title"] != "clean" {
		t.Fatalf("subscriber corrupted Put result: %v", obj.Fields)
	}
	upd, err := site.Space().Update("prinz", obj.ID, 1, map[string]string{"title": "clean-2"})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Fields["title"] != "clean-2" {
		t.Fatalf("subscriber corrupted Update result: %v", upd.Fields)
	}
}

// TestLateJoiningSiteCatchesUp: a site added after the deployment has
// replicated state pulls the existing objects with its first sync round,
// without waiting for an unrelated write, heal, or recovery.
func TestLateJoiningSiteCatchesUp(t *testing.T) {
	dep := NewDeployment(WithSeed(6))
	gmd := dep.AddSite("gmd", "gmd.de")
	dep.AddSite("upc", "upc.es")
	obj, err := gmd.Space().Put("prinz", SharedSchemaName, map[string]string{"title": "pre-join"})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run() // converged, replicators dormant

	nott := dep.AddSite("nott", "nott.uk")
	dep.Run()
	got, err := nott.Space().Get("prinz", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["title"] != "pre-join" || got.VV.Counter("gmd") != 1 {
		t.Fatalf("late joiner state = %+v", got)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}
