package mocca

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mocca/internal/netsim"
)

// scaleResult is one topology's cost at one scale: simulated time to
// digest-identical convergence, total sync+gossip bytes on the wire, and
// the busiest site's channel count — the three axes the gossip overlay
// must beat the mesh on.
type scaleResult struct {
	convergeMs  float64
	totalBytes  int64
	maxChannels int
}

// runGossipScale drives one n-site deployment (mesh or overlay) through
// setup, a scattered write burst, and drain-to-convergence; withCut adds
// the seeded partition-and-heal schedule before the final drain.
func runGossipScale(tb testing.TB, n int, overlay, withCut bool) scaleResult {
	tb.Helper()
	opts := []Option{WithSeed(11)}
	if overlay {
		opts = append(opts, WithGossip())
	}
	dep := NewDeployment(opts...)
	sites := make([]*Site, n)
	for i := range sites {
		name := fmt.Sprintf("s%03d", i)
		sites[i] = dep.AddSite(name, name+".org")
	}
	dep.Run()

	converged := func() bool {
		ref := sites[0].Space().Tree().Root()
		for _, s := range sites[1:] {
			if s.Space().Tree().Root() != ref {
				return false
			}
		}
		return true
	}

	// A write burst at five scattered sites.
	for w := 0; w < 5; w++ {
		if _, err := sites[w*n/5].Space().Put("user", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("burst-%d", w)}); err != nil {
			tb.Fatal(err)
		}
	}
	clk := dep.Clock()
	start := clk.Now()
	for !converged() {
		due, ok := clk.NextDeadline()
		if !ok {
			tb.Fatal("event queue drained before convergence")
		}
		clk.AdvanceTo(due)
	}
	convergeMs := float64(clk.Now().Sub(start)) / float64(time.Millisecond)
	dep.Run() // drain the tail (dormancy rounds) so byte totals are complete

	if withCut {
		// Seeded partition of a random 20% of sites, writes on both
		// sides, then heal and reconverge.
		rng := rand.New(rand.NewSource(1992))
		minority := map[int]bool{}
		for len(minority) < n/5 {
			minority[rng.Intn(n)] = true
		}
		var minAddrs, majAddrs []netsim.Address
		minIdx, majIdx := -1, -1
		for i, s := range sites {
			addrs := []netsim.Address{
				netsim.Address("mta-" + s.Name), netsim.Address("repl-" + s.Name),
				netsim.Address("place-" + s.Name), netsim.Address("gossip-" + s.Name),
			}
			if minority[i] {
				minAddrs = append(minAddrs, addrs...)
				if minIdx < 0 {
					minIdx = i
				}
			} else {
				majAddrs = append(majAddrs, addrs...)
				if majIdx < 0 {
					majIdx = i
				}
			}
		}
		dep.Network().Partition(minAddrs, majAddrs)
		for side, w := range []int{minIdx, majIdx} {
			if _, err := sites[w].Space().Put("user", SharedSchemaName,
				map[string]string{"title": fmt.Sprintf("cut-%d", side)}); err != nil {
				tb.Fatal(err)
			}
		}
		dep.Run()
		dep.Network().Heal()
		dep.Run()
		if !converged() {
			tb.Fatal("sites diverged after partition heal")
		}
	}

	res := scaleResult{convergeMs: convergeMs}
	for _, prefix := range []string{"repl-", "gossip-"} {
		t := dep.Fabric().TotalsFor(prefix)
		res.totalBytes += t.BytesOut
	}
	perSite := map[string]int{}
	for _, c := range dep.ChannelStats() {
		site := ""
		if strings.HasPrefix(c.Local, "repl-") {
			site = strings.TrimPrefix(c.Local, "repl-")
		} else if strings.HasPrefix(c.Local, "gossip-") {
			site = strings.TrimPrefix(c.Local, "gossip-")
		}
		if site != "" {
			perSite[site]++
		}
	}
	for _, count := range perSite {
		if count > res.maxChannels {
			res.maxChannels = count
		}
	}
	return res
}

// TestGossipScaleAcceptance pins the PR's acceptance criteria: at 256
// simulated sites the overlay's total sync+gossip bytes and its busiest
// site's channel count are both ≤ 25% of the full-mesh baseline at equal
// convergence, and overlay cost grows sublinearly in n from 64→256 while
// the mesh grows quadratically.
func TestGossipScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-site sweeps; skipped under -short")
	}
	mesh64 := runGossipScale(t, 64, false, false)
	over64 := runGossipScale(t, 64, true, false)
	mesh256 := runGossipScale(t, 256, false, false)
	over256 := runGossipScale(t, 256, true, false)
	t.Logf("mesh  64:  %8.0fms %12d bytes  %4d ch", mesh64.convergeMs, mesh64.totalBytes, mesh64.maxChannels)
	t.Logf("over  64:  %8.0fms %12d bytes  %4d ch", over64.convergeMs, over64.totalBytes, over64.maxChannels)
	t.Logf("mesh 256:  %8.0fms %12d bytes  %4d ch", mesh256.convergeMs, mesh256.totalBytes, mesh256.maxChannels)
	t.Logf("over 256:  %8.0fms %12d bytes  %4d ch", over256.convergeMs, over256.totalBytes, over256.maxChannels)

	if lim := mesh256.totalBytes / 4; over256.totalBytes > lim {
		t.Errorf("overlay bytes at 256 sites = %d, want ≤ 25%% of mesh (%d)",
			over256.totalBytes, lim)
	}
	if lim := mesh256.maxChannels / 4; over256.maxChannels > lim {
		t.Errorf("overlay per-site channels at 256 sites = %d, want ≤ 25%% of mesh (%d)",
			over256.maxChannels, lim)
	}
	// Sublinear growth: quadrupling n must not quadruple overlay bytes
	// per site — i.e. total bytes grow well below the mesh's ~16×.
	overGrowth := float64(over256.totalBytes) / float64(over64.totalBytes)
	meshGrowth := float64(mesh256.totalBytes) / float64(mesh64.totalBytes)
	if overGrowth >= meshGrowth/2 {
		t.Errorf("overlay byte growth 64→256 = %.1f×, mesh = %.1f× — not scaling away from the mesh",
			overGrowth, meshGrowth)
	}
	if overGrowth >= 8 {
		t.Errorf("overlay byte growth 64→256 = %.1f×, want < 8× (sublinear in n²; n grew 4×)",
			overGrowth)
	}
}

// BenchmarkGossipConvergenceScale reports simulated convergence time and
// wire bytes for mesh vs overlay at 64 and 256 sites, including the
// seeded partition-and-heal schedule. CI folds the custom metrics into
// BENCH_pr7.json via cmd/benchjson.
func BenchmarkGossipConvergenceScale(b *testing.B) {
	for _, topo := range []struct {
		name    string
		overlay bool
	}{{"mesh", false}, {"overlay", true}} {
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/sites=%d", topo.name, n), func(b *testing.B) {
				var res scaleResult
				for i := 0; i < b.N; i++ {
					res = runGossipScale(b, n, topo.overlay, true)
				}
				b.ReportMetric(res.convergeMs, "convergence-ms")
				b.ReportMetric(float64(res.totalBytes), "total-bytes")
				b.ReportMetric(float64(res.maxChannels), "peak-site-channels")
			})
		}
	}
}
