package mocca

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mocca/internal/information/logstore"
)

// digestBytes renders a space's digest as canonical per-object bytes so
// version vectors can be compared byte-for-byte across a crash.
func digestBytes(s *Site) map[string][]byte {
	out := make(map[string][]byte)
	for id, vv := range s.Space().Digest() {
		out[id] = vv.AppendBinary(nil)
	}
	return out
}

// TestDurableSiteCrashRestartReconverges is the crash-durability scenario:
// a site killed mid-run and restarted from its WAL+snapshot recovers its
// replica from disk, re-enters anti-entropy with correct digests, and
// pulls only the writes it missed — no full re-replication.
func TestDurableSiteCrashRestartReconverges(t *testing.T) {
	dep := NewDeployment(WithSeed(7), WithDurableStore(t.TempDir()))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	const before = 20 // objects replicated before the crash
	const during = 5  // objects written while upc is down
	for i := 0; i < before; i++ {
		if _, err := gmd.Space().Put("prinz", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("pre %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	dep.Run()
	if upc.Space().Len() != before {
		t.Fatalf("upc replica has %d objects before crash, want %d", upc.Space().Len(), before)
	}
	preCrash := digestBytes(upc)

	// Kill upc mid-run; the survivor keeps writing.
	upc.Crash()
	for i := 0; i < during; i++ {
		if _, err := gmd.Space().Put("prinz", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("while-down %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	dep.Run() // gmd's rounds fail against the dead site, then go dormant

	// Restart from disk: the replica is recovered BEFORE any sync round
	// runs, byte-for-byte identical to its pre-crash state.
	if err := upc.Restart(); err != nil {
		t.Fatal(err)
	}
	recovered := digestBytes(upc)
	if len(recovered) != len(preCrash) {
		t.Fatalf("recovered %d objects from disk, want %d", len(recovered), len(preCrash))
	}
	for id, want := range preCrash {
		if !bytes.Equal(recovered[id], want) {
			t.Fatalf("object %s: version vector changed across crash recovery", id)
		}
	}

	// Reconverge. The restarted replicator must apply exactly the writes
	// it missed — not the whole store.
	dep.Run()
	if got := upc.Space().Len(); got != before+during {
		t.Fatalf("upc replica has %d objects after restart, want %d", got, before+during)
	}
	gd, ud := digestBytes(gmd), digestBytes(upc)
	for id, want := range gd {
		if !bytes.Equal(ud[id], want) {
			t.Fatalf("object %s: replicas diverged after restart", id)
		}
	}
	st := upc.Replicator().Stats()
	if applied := st.Applied + st.ServedApplied; applied != during {
		t.Fatalf("restarted site applied %d objects, want exactly the %d it missed (full re-replication would be %d)",
			applied, during, before+during)
	}

	// The recovered site is a first-class replica again: its writes
	// propagate, durably.
	obj, err := upc.Space().Put("navarro", SharedSchemaName, map[string]string{"title": "post-restart"})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if got, err := gmd.Space().Get("navarro", obj.ID); err != nil || got.Fields["title"] != "post-restart" {
		t.Fatalf("post-restart write did not replicate: %v %v", got, err)
	}
}

// assertReplicasIdentical checks that every site agrees byte-for-byte:
// canonical digest encodings match per object, and the Merkle roots —
// the negotiation's convergence witness — are equal.
func assertReplicasIdentical(t *testing.T, sites []*Site) {
	t.Helper()
	ref := digestBytes(sites[0])
	refRoot := sites[0].Space().Tree().Root()
	for _, s := range sites[1:] {
		d := digestBytes(s)
		if len(d) != len(ref) {
			t.Fatalf("%s holds %d objects, %s holds %d", s.Name, len(d), sites[0].Name, len(ref))
		}
		for id, want := range ref {
			if !bytes.Equal(d[id], want) {
				t.Fatalf("object %s: digests diverge between %s and %s", id, sites[0].Name, s.Name)
			}
		}
		if root := s.Space().Tree().Root(); root != refRoot {
			t.Fatalf("Merkle roots diverge: %s=%x %s=%x", sites[0].Name, refRoot, s.Name, root)
		}
	}
}

// TestDurableCrashRestartCyclesWithTornTails is the extended
// crash-durability scenario: sites take turns crashing — each crash
// tearing a partial frame onto the victim's WAL — while the survivors
// keep writing across sites (including updates racing into conflicts).
// After every restart the recovered replica re-enters the Merkle
// negotiation and all digests AND tree roots converge byte-identically.
func TestDurableCrashRestartCyclesWithTornTails(t *testing.T) {
	dir := t.TempDir()
	dep := NewDeployment(WithSeed(53), WithDurableStore(dir))
	sites := []*Site{
		dep.AddSite("gmd", "gmd.de"),
		dep.AddSite("upc", "upc.es"),
		dep.AddSite("nott", "nott.uk"),
	}
	shared, err := sites[0].Space().Put("prinz", SharedSchemaName, map[string]string{"title": "shared v0"})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	assertReplicasIdentical(t, sites)

	version := shared.Version
	for cycle := 0; cycle < 4; cycle++ {
		victim := sites[cycle%len(sites)]
		victim.Crash()
		// A crash mid-append: a torn partial frame sits at the end of the
		// victim's log. Recovery must truncate it and carry on.
		wal := filepath.Join(dir, victim.Name, "wal.log")
		f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, byte(cycle)}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		// Cross-site writes while the victim is down: new rows at every
		// survivor plus an update of the shared object.
		for _, s := range sites {
			if s == victim {
				continue
			}
			if _, err := s.Space().Put("prinz", SharedSchemaName,
				map[string]string{"title": fmt.Sprintf("cycle %d @%s", cycle, s.Name)}); err != nil {
				t.Fatal(err)
			}
		}
		writer := sites[(cycle+1)%len(sites)]
		if writer == victim {
			writer = sites[(cycle+2)%len(sites)]
		}
		if upd, err := writer.Space().Update("prinz", shared.ID, version,
			map[string]string{"title": fmt.Sprintf("shared v%d", cycle+1)}); err == nil {
			version = upd.Version
		} else {
			t.Fatal(err)
		}
		dep.Run()

		if err := victim.Restart(); err != nil {
			t.Fatalf("cycle %d: restart %s: %v", cycle, victim.Name, err)
		}
		dep.Run()
		assertReplicasIdentical(t, sites)
	}

	// The mesh is fully live after the cycles: a write anywhere reaches
	// everywhere, durably.
	final, err := sites[2].Space().Put("navarro", SharedSchemaName, map[string]string{"title": "post-cycles"})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	for _, s := range sites {
		if got, err := s.Space().Get("navarro", final.ID); err != nil || got.Fields["title"] != "post-cycles" {
			t.Fatalf("%s missed the post-cycle write: %v %v", s.Name, got, err)
		}
	}
	assertReplicasIdentical(t, sites)
}

// TestSimultaneousCrashAllSitesReconverge: every site in a three-site
// mesh crashes at once, mid-sync — writes have landed at each site and
// the anti-entropy rounds they armed are still exchanging digests and
// deltas when the power goes. Each restart recovers the site's own
// durable state (tiered store: segments + manifest + WAL tail, small
// flush threshold so compaction is in play), and the resumed rounds
// reconverge every digest and Merkle root byte-identically.
func TestSimultaneousCrashAllSitesReconverge(t *testing.T) {
	dir := t.TempDir()
	dep := NewDeployment(WithSeed(71),
		WithDurableStore(dir, logstore.WithCompactEvery(8), logstore.WithMergeFanout(2)))
	sites := []*Site{
		dep.AddSite("gmd", "gmd.de"),
		dep.AddSite("upc", "upc.es"),
		dep.AddSite("nott", "nott.uk"),
	}
	// A replicated baseline, then fresh writes at EVERY site.
	if _, err := sites[0].Space().Put("prinz", SharedSchemaName, map[string]string{"title": "base"}); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	assertReplicasIdentical(t, sites)

	const perSite = 12 // past the flush threshold: rows reach segment files pre-crash
	for _, s := range sites {
		for i := 0; i < perSite; i++ {
			if _, err := s.Space().Put("prinz", SharedSchemaName,
				map[string]string{"title": fmt.Sprintf("burst %d @%s", i, s.Name)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Let the armed rounds fire and start exchanging, but do not run the
	// mesh to quiescence: the crash lands mid-sync, with deltas applied
	// at some sites and still in flight toward others.
	dep.Clock().Advance(dep.syncEvery + 50*time.Millisecond)

	preCrash := make(map[string]map[string][]byte, len(sites))
	for _, s := range sites {
		preCrash[s.Name] = digestBytes(s)
		s.Crash()
	}
	dep.Run() // drain whatever the dead mesh still had queued

	for _, s := range sites {
		if err := s.Restart(); err != nil {
			t.Fatalf("restart %s: %v", s.Name, err)
		}
		// Recovery is local: each site comes back with exactly the rows
		// it held at the kill point, byte-for-byte.
		got := digestBytes(s)
		want := preCrash[s.Name]
		if len(got) != len(want) {
			t.Fatalf("%s recovered %d objects, held %d at crash", s.Name, len(got), len(want))
		}
		for id, vv := range want {
			if !bytes.Equal(got[id], vv) {
				t.Fatalf("%s object %s: version vector changed across crash recovery", s.Name, id)
			}
		}
	}

	// The recovered replicators re-enter anti-entropy and reconcile the
	// partially-propagated bursts from every direction.
	for _, s := range sites {
		s.Replicator().SyncNow()
	}
	dep.Run()
	assertReplicasIdentical(t, sites)
	if want := 1 + len(sites)*perSite; sites[0].Space().Len() != want {
		t.Fatalf("converged replicas hold %d objects, want %d", sites[0].Space().Len(), want)
	}
	// Close the stores (background compaction included) before TempDir
	// cleanup walks the directory.
	for _, s := range sites {
		s.Crash()
	}
}

// TestInMemorySiteRestartRereplicates pins the contrast: without a durable
// backend a restarted site comes back empty and must pull everything.
func TestInMemorySiteRestartRereplicates(t *testing.T) {
	dep := NewDeployment(WithSeed(7))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := gmd.Space().Put("prinz", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("doc %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	dep.Run()

	upc.Crash()
	dep.Run()
	if err := upc.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := upc.Space().Len(); got != 0 {
		t.Fatalf("in-memory replica has %d objects right after restart, want 0", got)
	}
	dep.Run()
	if got := upc.Space().Len(); got != n {
		t.Fatalf("upc replica has %d objects after re-replication, want %d", got, n)
	}
	st := upc.Replicator().Stats()
	if applied := st.Applied + st.ServedApplied; applied != n {
		t.Fatalf("cold replica applied %d, want %d (everything)", applied, n)
	}
}

// Restart on a running site must refuse: it would open a second durable
// backend over a directory the live one still holds.
func TestRestartRequiresCrash(t *testing.T) {
	dep := NewDeployment(WithSeed(7), WithDurableStore(t.TempDir()))
	gmd := dep.AddSite("gmd", "gmd.de")
	if err := gmd.Restart(); err == nil {
		t.Fatal("Restart of a running site succeeded")
	}
	gmd.Crash()
	gmd.Crash() // idempotent
	if err := gmd.Restart(); err != nil {
		t.Fatalf("Restart after Crash: %v", err)
	}
}
